package sim

import (
	"fmt"

	"repro/internal/detrand"
	"repro/internal/enb"
	"repro/internal/epc"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/interference"
	"repro/internal/ltephy"
	"repro/internal/radio"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/traj"
	"repro/internal/ue"
)

// MultiCell is the cooperative fleet world: N airborne eNodeBs on one
// EPC core, an interference graph over their shared (or separate)
// carrier, an A3 handover engine, and a serving loop that mirrors
// World.ServeTraffic step for step. The mirroring is the point: with a
// single cell (or the separate-carrier plan) every interference
// penalty is exactly zero and every RNG stream is consumed in the same
// order, so the reports are byte-identical to the legacy single-UAV
// path — the new subsystem extends the world without forking its
// numbers.
type MultiCell struct {
	Cfg     Config
	NCells  int
	Radio   *radio.Model
	UEs     []*ue.UE
	Num     ltephy.Numerology
	Core    *epc.Core
	Cells   []*enb.ENodeB
	Graph   *interference.Graph
	HO      *enb.HandoverEngine
	Tracer  *trace.Recorder
	Faults  *fault.Injector
	Workers int

	// Serving maps UE index to its current serving cell.
	Serving []int
	// Mobile, when true, steps UE mobility every 10 ms measurement
	// tick during serving phases (the legacy world keeps UEs frozen
	// while hovering; handovers need them to move).
	Mobile bool

	Clock float64

	rng      *detrand.Rand // measurement noise (same stream id as World)
	mrng     *detrand.Rand // mobility
	placeRNG *detrand.Rand // k-means seeding for fleet placement

	servePhase uint64

	// legacyBits is a test hook: when set, CommitTTI runs with the
	// interference-free bit mapping, giving the pre-SINR arithmetic to
	// golden-diff the degraded path against.
	legacyBits bool
}

// NewMultiCell builds a fleet world: n cells placed deterministically
// (the single-cell fleet parks at the legacy spot — area centre, max
// altitude; larger fleets start on k-means centroids of the UE field
// refined by max-min SINR descent), every UE attached in index order
// to its load-aware best cell. workers bounds the placement fan-out
// and never changes results.
func NewMultiCell(cfg Config, n int, plan interference.Plan, ho enb.HandoverConfig, ues []*ue.UE, workers int) (*MultiCell, error) {
	if cfg.Terrain == nil {
		return nil, fmt.Errorf("sim: Config.Terrain is required")
	}
	if n < 1 {
		return nil, fmt.Errorf("sim: fleet needs at least one cell, got %d", n)
	}
	cfg.defaults()
	model := radio.NewModel(cfg.Terrain, cfg.RadioParams, cfg.Seed)
	num := ltephy.LTE10MHz()
	hss := epc.NewHSS()
	core := epc.NewCore(hss)

	m := &MultiCell{
		Cfg:      cfg,
		NCells:   n,
		Radio:    model,
		UEs:      ues,
		Num:      num,
		Core:     core,
		Cells:    make([]*enb.ENodeB, n),
		HO:       enb.NewHandoverEngine(ho, len(ues), n),
		Faults:   fault.New(cfg.Faults, int64(cfg.Seed)),
		Workers:  workers,
		Serving:  make([]int, len(ues)),
		rng:      detrand.New(int64(cfg.Seed) + 202),
		mrng:     detrand.New(int64(cfg.Seed) + 303),
		placeRNG: detrand.New(int64(cfg.Seed) + 41),
	}
	for c := range m.Cells {
		m.Cells[c] = enb.New(num, core, cfg.Scheduler)
	}
	start := cfg.Terrain.Bounds().Center().WithZ(cfg.UAVConfig.MaxAltitudeM)
	cells := make([]geom.Vec3, n)
	for c := range cells {
		cells[c] = start
	}
	m.Graph = interference.NewGraph(plan, model, cells)
	if n > 1 {
		if err := m.PlaceCells(); err != nil {
			return nil, err
		}
	}

	load := make([]int, n)
	for i, u := range ues {
		imsi := imsiFor(u.ID)
		var key [16]byte
		key[0] = byte(u.ID)
		key[15] = byte(u.ID >> 8)
		hss.Provision(epc.Subscriber{IMSI: imsi, Key: key, QoSClass: 9})
		cell := 0
		if n > 1 {
			cell = m.Graph.BestCell(u.Pos, load, ho.LoadBiasDB)
		}
		if _, err := m.Cells[cell].Attach(imsi, key, uint64(u.ID)+cfg.Seed); err != nil {
			return nil, fmt.Errorf("sim: attaching UE %d: %w", u.ID, err)
		}
		m.Serving[i] = cell
		load[cell]++
	}
	return m, nil
}

// IMSIOf returns the IMSI provisioned for the i-th UE.
func (m *MultiCell) IMSIOf(i int) epc.IMSI { return imsiFor(m.UEs[i].ID) }

// CellOf returns UE i's current serving cell.
func (m *MultiCell) CellOf(i int) int { return m.Serving[i] }

// CellLoad returns the number of UEs served by each cell.
func (m *MultiCell) CellLoad() []int {
	load := make([]int, m.NCells)
	for _, c := range m.Serving {
		load[c]++
	}
	return load
}

// PlaceCells recomputes the fleet placement for the current UE field:
// k-means centroids (seeded from the dedicated placement stream, so
// measurement and mobility streams are untouched) lifted to maximum
// altitude, refined by max-min SINR coordinate descent. The single-cell
// fleet keeps the legacy spot untouched.
func (m *MultiCell) PlaceCells() error {
	if m.NCells < 2 {
		return nil
	}
	pts := make([]geom.Vec2, len(m.UEs))
	for i, u := range m.UEs {
		pts[i] = u.Pos
	}
	centers := traj.KMeans(pts, m.NCells, m.placeRNG.Rand)
	alt := m.Cfg.UAVConfig.MaxAltitudeM
	for c, ctr := range centers {
		m.Graph.SetCell(c, ctr.WithZ(alt))
	}
	_, err := interference.PlaceMaxMinSINR(m.Graph, pts, m.Cfg.Terrain.Bounds(), 40, 8, m.Workers)
	return err
}

// AvgThroughputBps mirrors World.AvgThroughputAt for the fleet: the
// mean over UEs of the PHY throughput at the fully-loaded wideband
// SINR from each UE's serving cell.
func (m *MultiCell) AvgThroughputBps() float64 {
	if len(m.UEs) == 0 {
		return 0
	}
	var sum float64
	for i, u := range m.UEs {
		sum += m.Num.ThroughputBps(m.Graph.WidebandSINRdB(m.Serving[i], u.Pos, nil, 0))
	}
	return sum / float64(len(m.UEs))
}

// MinSINRdB is the fleet's current max-min SINR objective value.
func (m *MultiCell) MinSINRdB() float64 {
	pts := make([]geom.Vec2, len(m.UEs))
	for i, u := range m.UEs {
		pts[i] = u.Pos
	}
	return m.Graph.MinSINRdB(pts)
}

// Reselect re-runs load-aware cell selection for every UE in index
// order (idle-mode reselection at an epoch boundary, not a handover:
// no A3 event, no handover KPIs). The context transfer is the same
// zero-loss X2 path the handover uses.
func (m *MultiCell) Reselect() error {
	if m.NCells < 2 {
		return nil
	}
	load := m.CellLoad()
	for i, u := range m.UEs {
		best := m.Graph.BestCell(u.Pos, load, m.HO.Cfg.LoadBiasDB)
		if best == m.Serving[i] {
			continue
		}
		if err := m.transfer(i, best); err != nil {
			return err
		}
		load[m.Serving[i]]--
		load[best]++
		m.Serving[i] = best
		m.HO.Reset(i)
	}
	return nil
}

// transfer executes the X2 context move of UE i to cell `to`.
func (m *MultiCell) transfer(i, to int) error {
	hc, err := m.Cells[m.Serving[i]].ReleaseForHandover(m.IMSIOf(i))
	if err != nil {
		return err
	}
	before := hc.QueuedBytes
	if _, err := m.Cells[to].AdoptForHandover(hc); err != nil {
		return err
	}
	if hc.Bearer != nil && hc.Bearer.QueuedBytes() != before {
		return fmt.Errorf("sim: UE %d lost queued bytes in transfer: %d -> %d", m.UEs[i].ID, before, hc.Bearer.QueuedBytes())
	}
	return nil
}

// measuredSNR is the UE's noisy wideband report against its serving
// cell — one normal draw per UE per tick, exactly like World.
func (m *MultiCell) measuredSNR(i int) float64 {
	return m.Graph.SNRdB(m.Serving[i], m.UEs[i].Pos) + m.rng.NormFloat64()*m.Cfg.MeasNoiseDB
}

// reportTick runs one 10 ms measurement tick: optional mobility, noisy
// serving-cell reports (churned or interrupted UEs report an
// undecodable channel but still consume their noise draw, keeping the
// stream aligned with the legacy world), then the A3 sweep with any
// triggered handovers executed inline.
func (m *MultiCell) reportTick(now, dt, tRel float64, plan *fault.ServePlan) error {
	if m.Mobile {
		for _, u := range m.UEs {
			u.Step(dt, m.mrng.Rand)
		}
	}
	for i := range m.UEs {
		snr := m.measuredSNR(i)
		if plan.ChurnedOut(i, tRel) || m.HO.Interrupted(i, now) {
			snr = churnedSNRdB
		}
		m.Cells[m.Serving[i]].ReportSNR(m.IMSIOf(i), snr)
	}
	if m.NCells < 2 {
		return nil
	}
	load := m.CellLoad()
	scores := make([]float64, m.NCells)
	for i, u := range m.UEs {
		if plan.ChurnedOut(i, tRel) {
			m.HO.Reset(i)
			continue
		}
		for j := 0; j < m.NCells; j++ {
			scores[j] = m.Graph.WidebandSINRdB(j, u.Pos, nil, 0) - m.HO.Cfg.LoadBiasDB*float64(load[j])
		}
		target, fire := m.HO.Evaluate(i, now, dt, m.Serving[i], scores)
		if !fire {
			continue
		}
		from := m.Serving[i]
		if err := m.transfer(i, target); err != nil {
			return err
		}
		load[from]--
		load[target]++
		m.Serving[i] = target
		m.HO.Complete(i, now, from, target)
		if m.Tracer != nil {
			m.Tracer.Emit(trace.Record{Kind: trace.KindHandover, T: now, UE: m.UEs[i].ID, FromCell: from, ToCell: target})
		}
	}
	return nil
}

// bitsFor builds cell c's interference-degraded bit mapping for one
// TTI given every cell's PRB occupancy. With one cell, the separate
// plan, or no PRB overlap the penalty is exactly 0 and the mapping
// returns the legacy CQI rate bit for bit.
func (m *MultiCell) bitsFor(c int, index map[epc.IMSI]int, occ []int) func(enb.Alloc) float64 {
	if m.legacyBits {
		return nil
	}
	return func(a enb.Alloc) float64 {
		if a.N == 0 {
			return 0
		}
		i := index[a.IMSI]
		pen := m.Graph.PenaltyDB(c, m.UEs[i].Pos, interference.PRBInterval{Start: a.Start, N: a.N}, occ)
		return enb.BitsPerPRBTTIDegraded(a.CQI, pen) * float64(a.N)
	}
}

// runTTI plans every cell, derives the fleet PRB occupancy, and
// commits each cell's allocations with interference-degraded bits.
func (m *MultiCell) runTTI(index map[epc.IMSI]int, grant func(cell int, imsi epc.IMSI, bits float64)) {
	plans := make([]*enb.TTIPlan, m.NCells)
	occ := make([]int, m.NCells)
	for c := range m.Cells {
		plans[c] = m.Cells[c].PlanTTI()
		occ[c] = plans[c].OccupiedPRBs()
	}
	for c := range m.Cells {
		var g func(epc.IMSI, float64)
		if grant != nil {
			cc := c
			g = func(imsi epc.IMSI, bits float64) { grant(cc, imsi, bits) }
		}
		m.Cells[c].CommitTTI(plans[c], m.bitsFor(c, index, occ), g)
	}
}

// imsiIndex maps every UE's IMSI to its index.
func (m *MultiCell) imsiIndex() map[epc.IMSI]int {
	index := make(map[epc.IMSI]int, len(m.UEs))
	for i := range m.UEs {
		index[m.IMSIOf(i)] = i
	}
	return index
}

// servedBits returns UE i's cumulative served bits (wherever its
// context currently lives).
func (m *MultiCell) servedBits(i int) float64 {
	return m.Cells[m.Serving[i]].ServedBits(m.IMSIOf(i))
}

// reportEvery returns how many TTI steps sit between 10 ms measurement
// ticks for the given stride — the legacy cadence.
func reportEvery(ttiStride int) int { return 10 / min(10, ttiStride) }

// ServeSeconds mirrors World.ServeSeconds for the fleet: hover, 10 ms
// report ticks (with mobility and handovers), interference-degraded
// TTIs, per-UE served bits out.
func (m *MultiCell) ServeSeconds(seconds float64, ttiStride int) ([]float64, error) {
	var plan *fault.ServePlan
	if m.Faults != nil {
		plan = m.Faults.NewServePlan(m.Cfg.Seed, m.servePhase, len(m.UEs), seconds)
		m.servePhase++
	}
	return m.serveSeconds(seconds, ttiStride, plan)
}

func (m *MultiCell) serveSeconds(seconds float64, ttiStride int, plan *fault.ServePlan) ([]float64, error) {
	if ttiStride < 1 {
		ttiStride = 1
	}
	startBits := make([]float64, len(m.UEs))
	for i := range m.UEs {
		startBits[i] = m.servedBits(i)
	}
	index := m.imsiIndex()
	tti := float64(ttiStride) / 1000
	steps := int(seconds * 1000 / float64(ttiStride))
	every := reportEvery(ttiStride)
	dt := float64(every) * tti
	for s := 0; s < steps; s++ {
		if s%every == 0 {
			if err := m.reportTick(m.Clock, dt, float64(s)*tti, plan); err != nil {
				return nil, err
			}
		}
		m.runTTI(index, nil)
		m.Clock += tti
	}
	out := make([]float64, len(m.UEs))
	for i := range m.UEs {
		out[i] = (m.servedBits(i) - startBits[i]) * float64(ttiStride)
		if m.Tracer != nil {
			m.Tracer.Emit(trace.Record{Kind: trace.KindServe, T: m.Clock, UE: m.UEs[i].ID, Value: out[i]})
		}
	}
	return out, nil
}

// ServeTraffic mirrors World.ServeTraffic for the fleet: the same
// arrival generator, GTP-U fault handling, bearer crediting and KPI
// collection, with per-cell TTI planning and RB-overlap interference
// degrading the committed bits. Handovers triggered by the 10 ms A3
// sweep move live contexts between cells mid-phase; the bearer (and
// its in-flight bytes) moves with the UE, so offered/delivered/dropped
// packet accounting is conserved across handovers by construction.
func (m *MultiCell) ServeTraffic(seconds float64, ttiStride int, spec traffic.Spec) (*traffic.Report, error) {
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	if ttiStride < 1 {
		ttiStride = 1
	}
	ids := make([]int, len(m.UEs))
	for i, u := range m.UEs {
		ids[i] = u.ID
	}
	col := traffic.NewCollector(spec.Model, ids)

	startHO := make([]uint64, len(m.UEs))
	for i := range m.UEs {
		startHO[i] = m.HO.UESuccesses(i)
	}

	if spec.Model == traffic.ModelFullBuffer {
		bits, err := m.ServeSeconds(seconds, ttiStride)
		if err != nil {
			return nil, err
		}
		for i, b := range bits {
			col.FullBufferServed(i, b)
		}
		rep := col.Report(seconds, nil, nil)
		m.stampCells(rep, startHO)
		m.emitTraffic(rep, false)
		return rep, nil
	}

	phase := m.servePhase
	m.servePhase++
	phaseSeed := m.Cfg.Seed + 0x9e3779b97f4a7c15*phase
	var plan *fault.ServePlan
	if m.Faults != nil {
		plan = m.Faults.NewServePlan(m.Cfg.Seed, phase, len(m.UEs), seconds)
	}
	gen := traffic.NewGenerator(traffic.NewSources(spec, ids, phaseSeed, seconds))

	// Bearer objects move between cells with their UE, so the slice
	// built here stays valid across handovers.
	bearers := make([]*enb.Bearer, len(m.UEs))
	index := m.imsiIndex()
	for i := range m.UEs {
		b, ok := m.Cells[m.Serving[i]].Bearer(m.IMSIOf(i))
		if !ok {
			return nil, fmt.Errorf("sim: UE %d has no bearer", m.UEs[i].ID)
		}
		bearers[i] = b
	}

	var startStarved []uint64
	if m.Faults != nil {
		startStarved = make([]uint64, len(m.UEs))
		for i := range m.UEs {
			startStarved[i] = m.Cells[m.Serving[i]].StarvedTTIs(m.IMSIOf(i))
		}
	}

	var scratch [65536]byte // zero payload template; only sizes matter
	start := m.Clock
	tti := float64(ttiStride) / 1000
	steps := int(seconds * 1000 / float64(ttiStride))
	every := reportEvery(ttiStride)
	dt := float64(every) * tti
	for s := 0; s < steps; s++ {
		now := start + float64(s)*tti
		if s%every == 0 {
			if err := m.reportTick(now, dt, float64(s)*tti, plan); err != nil {
				return nil, err
			}
		}
		// Enqueue everything arriving during this TTI before its grants.
		for {
			a, ok := gen.Pop(float64(s+1) * tti)
			if !ok {
				break
			}
			col.Offered(a.UE, a.Bytes)
			if plan.ChurnedOut(a.UE, a.T) {
				col.FaultDropped(a.UE, a.Bytes)
				plan.NoteChurnDrop()
				continue
			}
			if plan.DropGTPU(a.UE, a.T) {
				col.FaultDropped(a.UE, a.Bytes)
				continue
			}
			copies := 1
			if plan.DupGTPU(a.UE) {
				copies = 2
				col.Duplicated(a.UE, a.Bytes)
			}
			for c := 0; c < copies; c++ {
				if c == 1 {
					col.Offered(a.UE, a.Bytes)
				}
				pdu := bearers[a.UE].Tunnel().Encap(scratch[:a.Bytes])
				switch err := bearers[a.UE].DeliverGTPUAt(pdu, start+a.T); err {
				case nil, enb.ErrQueueOverflow:
					if err != nil {
						col.Dropped(a.UE, a.Bytes)
					}
				default:
					return nil, fmt.Errorf("sim: delivering to UE %d: %w", m.UEs[a.UE].ID, err)
				}
			}
		}
		done := now + tti
		m.runTTI(index, func(_ int, imsi epc.IMSI, bits float64) {
			i := index[imsi]
			for _, d := range bearers[i].CreditAt(bits*float64(ttiStride), done) {
				col.Delivered(i, len(d.Data), done-d.EnqueuedAt)
			}
		})
		m.Clock += tti
	}

	backlog := make([]int, len(bearers))
	peak := make([]int, len(bearers))
	for i, b := range bearers {
		backlog[i] = b.QueuedPackets()
		peak[i] = b.PeakQueue()
	}
	if startStarved != nil {
		for i := range m.UEs {
			col.Starved(i, m.Cells[m.Serving[i]].StarvedTTIs(m.IMSIOf(i))-startStarved[i])
		}
	}
	rep := col.Report(seconds, backlog, peak)
	m.stampCells(rep, startHO)
	m.emitTraffic(rep, true)
	return rep, nil
}

// stampCells fills the multi-cell KPI columns: the UE's serving cell
// (1-based, so the field stays off the wire in single-cell runs and
// legacy rows are byte-identical) and its handover count this phase.
func (m *MultiCell) stampCells(rep *traffic.Report, startHO []uint64) {
	if m.NCells < 2 {
		return
	}
	for i := range rep.KPIs {
		rep.KPIs[i].Cell = m.Serving[i] + 1
		rep.KPIs[i].Handovers = m.HO.UESuccesses(i) - startHO[i]
	}
}

// FaultCounts returns the cumulative injected-fault counters.
func (m *MultiCell) FaultCounts() fault.Counts { return m.Faults.Counts() }

// emitTraffic mirrors World.emitTraffic.
func (m *MultiCell) emitTraffic(rep *traffic.Report, withServe bool) {
	if m.Tracer == nil {
		return
	}
	for _, k := range rep.KPIs {
		if withServe {
			m.Tracer.Emit(trace.Record{Kind: trace.KindServe, T: m.Clock, UE: k.UE, Value: float64(k.DeliveredBytes) * 8})
		}
		m.Tracer.Emit(trace.Record{
			Kind: trace.KindTraffic, T: m.Clock, UE: k.UE,
			Value: k.ThroughputBps, DelayS: k.MeanDelayS, LossFrac: k.LossFrac,
		})
	}
}
