package sim

import (
	"fmt"

	"repro/internal/detrand"
	"repro/internal/enb"
	"repro/internal/fault"
	"repro/internal/uav"
	"repro/internal/ue"
)

// WorldState is the world's complete serializable simulation state at
// a quiescent point (no flight in progress): the clock, the serving
// phase counter, both RNG stream cursors, and the platform/UE/LTE
// stack state. The static configuration — terrain, radio model,
// numerology, mobility models — is rebuilt from the scenario spec, not
// serialized; restoring a snapshot into a world built from a different
// spec fails loudly at a higher layer (scenario fingerprinting).
type WorldState struct {
	Clock      float64
	ServePhase uint64

	RNG         detrand.State
	MobilityRNG detrand.State

	UAV uav.State
	UEs []ue.State
	ENB enb.State

	// Faults carries the fault injector's stream cursors and counters;
	// nil for worlds without an active schedule (gob omits the nil
	// pointer, keeping fault-free checkpoints on the existing wire
	// form).
	Faults *fault.State
}

// Snapshot captures the world state.
func (w *World) Snapshot() WorldState {
	st := WorldState{
		Clock:       w.Clock,
		ServePhase:  w.servePhase,
		RNG:         w.rng.State(),
		MobilityRNG: w.mrng.State(),
		UAV:         w.UAV.Snapshot(),
		ENB:         w.ENB.Snapshot(),
	}
	for _, u := range w.UEs {
		st.UEs = append(st.UEs, u.Snapshot())
	}
	if w.Faults != nil {
		fs := w.Faults.Snapshot()
		st.Faults = &fs
	}
	return st
}

// Restore reinstates a snapshot into a world built from the same
// configuration. After a successful restore the world continues
// byte-identically to the one the snapshot was taken from.
func (w *World) Restore(st WorldState) error {
	if len(st.UEs) != len(w.UEs) {
		return fmt.Errorf("sim: snapshot has %d UEs, world has %d", len(st.UEs), len(w.UEs))
	}
	if err := w.rng.Restore(st.RNG); err != nil {
		return fmt.Errorf("sim: measurement RNG: %w", err)
	}
	if err := w.mrng.Restore(st.MobilityRNG); err != nil {
		return fmt.Errorf("sim: mobility RNG: %w", err)
	}
	if err := w.UAV.Restore(st.UAV); err != nil {
		return err
	}
	for i, u := range w.UEs {
		if err := u.Restore(st.UEs[i]); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	if err := w.ENB.Restore(st.ENB); err != nil {
		return err
	}
	if st.Faults != nil {
		if w.Faults == nil {
			return fmt.Errorf("sim: snapshot carries fault state but the world has no fault schedule")
		}
		if err := w.Faults.Restore(*st.Faults); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	w.Clock = st.Clock
	w.servePhase = st.ServePhase
	return nil
}
