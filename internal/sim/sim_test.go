package sim

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/locate"
	"repro/internal/terrain"
	"repro/internal/traffic"
	"repro/internal/ue"
)

func testWorld(t *testing.T, fast bool, ues []*ue.UE) *World {
	t.Helper()
	w, err := New(Config{
		Terrain:     terrain.Campus(1),
		Seed:        1,
		FastRanging: fast,
	}, ues)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func campusUEs() []*ue.UE {
	// Mirror the paper's UE 1 (open lot), UE 6 (beside the office
	// building) and UE 7 (forest), plus a few more.
	return []*ue.UE{
		ue.New(0, geom.V2(80, 250)),  // parking lot, open
		ue.New(1, geom.V2(195, 160)), // beside office building
		ue.New(2, geom.V2(150, 30)),  // inside forest strip
		ue.New(3, geom.V2(250, 120)),
		ue.New(4, geom.V2(60, 120)),
	}
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := New(Config{}, nil); err == nil {
		t.Error("missing terrain should fail")
	}
}

func TestWorldAttachesUEs(t *testing.T) {
	w := testWorld(t, false, campusUEs())
	if got := w.Core.ActiveSessions(); got != 5 {
		t.Errorf("sessions = %d, want 5", got)
	}
	if len(w.ENB.Connected()) != 5 {
		t.Error("not all UEs connected")
	}
}

func TestStepAdvancesClockAndUAV(t *testing.T) {
	w := testWorld(t, false, campusUEs())
	start := w.UAV.Position()
	w.UAV.SetRoute([]geom.Vec3{geom.V3(0, 0, 60)})
	w.Step(1)
	if w.Clock != 1 {
		t.Error("clock")
	}
	if w.UAV.Position() == start {
		t.Error("UAV did not move")
	}
}

func TestMeasuredSNRNoisyAroundTruth(t *testing.T) {
	w := testWorld(t, false, campusUEs())
	truth := w.TrueSNR(0)
	var sum, sumSq float64
	n := 2000
	for i := 0; i < n; i++ {
		d := w.MeasuredSNR(0) - truth
		sum += d
		sumSq += d * d
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.2 {
		t.Errorf("measurement bias %v", mean)
	}
	if math.Abs(std-2) > 0.3 {
		t.Errorf("measurement σ = %v, want ~2", std)
	}
}

func TestFlyMeasureCollectsSamples(t *testing.T) {
	w := testWorld(t, false, campusUEs())
	path := geom.Polyline{geom.V2(50, 50), geom.V2(250, 50), geom.V2(250, 250)}
	samples, flown := w.FlyMeasure(path, 60, 0)
	if flown < path.Length()*0.9 {
		t.Errorf("flew %v of %v", flown, path.Length())
	}
	// ~8.33 m/s at 50 Hz → ≈6 samples per metre of path... actually
	// 50 samples/s / 8.33 m/s ≈ 6 samples per metre.
	if len(samples) < int(flown*3) {
		t.Errorf("only %d samples over %v m", len(samples), flown)
	}
	for _, s := range samples {
		if len(s.SNRs) != 5 {
			t.Fatal("sample missing UEs")
		}
	}
}

func TestFlyMeasureBudgetStops(t *testing.T) {
	w := testWorld(t, false, campusUEs())
	path := geom.Polyline{geom.V2(10, 10), geom.V2(290, 10), geom.V2(290, 290)}
	_, flown := w.FlyMeasure(path, 60, 100)
	if flown < 99 || flown > 110 {
		t.Errorf("budget-limited flight flew %v, want ~100", flown)
	}
	if !w.UAV.Hovering() {
		t.Error("route should be cancelled at budget exhaustion")
	}
}

func TestLocalizationFlightEndToEnd(t *testing.T) {
	// The headline integration test: full SRS PHY + GPS noise +
	// multilateration recovers UE positions with paper-like accuracy
	// (§4.3: median 5-7 m over a 20 m flight; we allow a margin for
	// the harder forest UE).
	w := testWorld(t, false, campusUEs())
	rng := rand.New(rand.NewSource(9))
	path := randomLoop(w.Area(), geom.V2(150, 150), 30, rng)
	tuples, flown := w.LocalizationFlight(path, 60)
	if flown < 25 {
		t.Fatalf("flew only %v m", flown)
	}
	results, err := locate.SolveJoint(tuples, locate.Options{
		Bounds:      w.Area(),
		GroundZ:     func(p geom.Vec2) float64 { return w.Radio.GroundZ(p) + 1.5 },
		OffsetPrior: &locate.OffsetPrior{MeanM: w.Cfg.ProcOffsetM, SigmaM: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	var errs []float64
	for i, r := range results {
		errs = append(errs, r.UE.Dist(w.UEs[i].Pos))
	}
	sort.Float64s(errs)
	med := errs[len(errs)/2]
	if med > 10 {
		t.Errorf("median localization error %.1f m, want <= 10 (paper: 5-7)", med)
	}
}

func TestFastRangingMatchesSlowStatistics(t *testing.T) {
	// The fast error model must produce ranging errors in the same
	// band as the PHY chain (medians within 3 m of each other).
	med := func(fast bool) float64 {
		w := testWorld(t, fast, campusUEs())
		rng := rand.New(rand.NewSource(4))
		path := randomLoop(w.Area(), geom.V2(150, 150), 25, rng)
		tuples, _ := w.LocalizationFlight(path, 60)
		var errs []float64
		for i, ts := range tuples {
			uePt := w.Radio.UEPoint(w.UEs[i].Pos)
			for _, tp := range ts {
				true3 := tp.UAVPos.Dist(uePt) // GPS noise folded in; fine for stats
				errs = append(errs, math.Abs(tp.RangeM-w.Cfg.ProcOffsetM-true3))
			}
		}
		sort.Float64s(errs)
		return errs[len(errs)/2]
	}
	slow, fast := med(false), med(true)
	if math.Abs(slow-fast) > 3 {
		t.Errorf("fast ranging median error %.2f vs PHY %.2f: calibration drifted", fast, slow)
	}
}

func TestServeSecondsDeliversBits(t *testing.T) {
	w := testWorld(t, false, campusUEs())
	// Park somewhere sensible first.
	w.UAV.SetRoute([]geom.Vec3{geom.V3(150, 150, 60)})
	for !w.UAV.Hovering() {
		w.Step(1)
	}
	bits := w.ServeSeconds(1, 1)
	var total float64
	for _, b := range bits {
		total += b
	}
	if total <= 0 {
		t.Fatal("no bits served from a central position")
	}
	if total > w.Num.PeakThroughputBps()*1.01 {
		t.Errorf("served %v bps exceeds cell capacity", total)
	}
	// Strided serving should be within 20%.
	w2 := testWorld(t, false, campusUEs())
	w2.UAV.SetRoute([]geom.Vec3{geom.V3(150, 150, 60)})
	for !w2.UAV.Hovering() {
		w2.Step(1)
	}
	bits2 := w2.ServeSeconds(1, 10)
	var total2 float64
	for _, b := range bits2 {
		total2 += b
	}
	if total2 <= 0 || math.Abs(total2-total)/total > 0.25 {
		t.Errorf("strided serving %v vs full %v", total2, total)
	}
}

func TestAvgThroughputAndMinSNRConsistent(t *testing.T) {
	w := testWorld(t, false, campusUEs())
	good := geom.V3(150, 150, 60)
	far := geom.V3(5, 5, 60)
	if w.AvgThroughputAt(good) <= w.AvgThroughputAt(far) {
		t.Error("central position should beat the far corner on average throughput")
	}
	if w.MinSNRAt(good) <= w.MinSNRAt(far) {
		t.Error("central position should beat the far corner on min SNR")
	}
}

func TestGroundTruthREMsPerUE(t *testing.T) {
	w := testWorld(t, false, campusUEs()[:2])
	truths := w.GroundTruthREMs(60, 10)
	if len(truths) != 2 {
		t.Fatal("one truth grid per UE")
	}
	// Each truth peaks near its own UE.
	for i, g := range truths {
		cx, cy, _ := g.MaxCell()
		if g.CellCenter(cx, cy).Dist(w.UEs[i].Pos) > 60 {
			t.Errorf("truth %d peak far from UE", i)
		}
	}
}

// randomLoop builds a closed random flight for tests. The loop guard
// stays well above zero: the clamped step distance can round to
// slightly less than the drawn leg, and a `remaining > 0` guard would
// then shrink geometrically without ever terminating.
func randomLoop(area geom.Rect, start geom.Vec2, lengthM float64, rng *rand.Rand) geom.Polyline {
	p := geom.Polyline{start}
	cur := start
	remaining := lengthM
	for remaining > 0.5 {
		leg := math.Min(8+rng.Float64()*8, remaining)
		th := rng.Float64() * 2 * math.Pi
		next := area.Clamp(cur.Add(geom.V2(math.Cos(th), math.Sin(th)).Scale(leg)))
		p = append(p, next)
		remaining -= next.Dist(cur)
		cur = next
	}
	return p
}

func TestFlyMeasureWithRangingTuples(t *testing.T) {
	w := testWorld(t, true, campusUEs())
	path := geom.Polyline{geom.V2(60, 60), geom.V2(240, 60), geom.V2(240, 240)}
	samples, tuples, flown := w.FlyMeasureWithRanging(path, 60, 0)
	if flown < 300 {
		t.Fatalf("flew %v", flown)
	}
	if len(samples) == 0 {
		t.Fatal("no SNR samples")
	}
	if len(tuples) != len(w.UEs) {
		t.Fatal("tuple streams missing")
	}
	// The measurement flight spans hundreds of metres: tuples should be
	// plentiful for most UEs (outage can thin the worst one).
	rich := 0
	for _, ts := range tuples {
		if len(ts) > 100 {
			rich++
		}
	}
	if rich < len(w.UEs)-1 {
		t.Errorf("only %d/%d UEs have a rich tuple stream", rich, len(w.UEs))
	}
	// Aperture check: the tuple positions span the flight.
	var minX, maxX = 1e18, -1e18
	for _, tp := range tuples[0] {
		if tp.UAVPos.X < minX {
			minX = tp.UAVPos.X
		}
		if tp.UAVPos.X > maxX {
			maxX = tp.UAVPos.X
		}
	}
	if maxX-minX < 100 {
		t.Errorf("tuple aperture only %.0f m", maxX-minX)
	}
}

func TestFlyMeasureWithoutRangingSkipsTuples(t *testing.T) {
	w := testWorld(t, true, campusUEs())
	path := geom.Polyline{geom.V2(60, 60), geom.V2(120, 60)}
	samples, flown := w.FlyMeasure(path, 60, 0)
	if len(samples) == 0 || flown <= 0 {
		t.Fatal("measurement flight failed")
	}
}

func TestServeTrafficConservesPackets(t *testing.T) {
	w := testWorld(t, true, campusUEs())
	rep, err := w.ServeTraffic(2, 1, traffic.Spec{Model: traffic.ModelPoisson, RateBps: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.KPIs) != len(w.UEs) {
		t.Fatalf("KPI rows = %d, want %d", len(rep.KPIs), len(w.UEs))
	}
	for _, k := range rep.KPIs {
		if k.OfferedPackets == 0 {
			t.Fatalf("UE %d offered nothing", k.UE)
		}
		// Every offered packet is delivered, dropped, or still queued.
		if k.OfferedPackets != k.DeliveredPackets+k.DroppedPackets+uint64(k.BacklogPackets) {
			t.Fatalf("UE %d: offered %d != delivered %d + dropped %d + backlog %d",
				k.UE, k.OfferedPackets, k.DeliveredPackets, k.DroppedPackets, k.BacklogPackets)
		}
		if k.DeliveredPackets > 0 && k.MeanDelayS <= 0 {
			t.Fatalf("UE %d delivered packets with non-positive mean delay", k.UE)
		}
	}
	if rep.Summary.DeliveredBytes == 0 {
		t.Fatal("nothing delivered in 2 s of serving")
	}
}

func TestServeTrafficDeterministicAcrossWorlds(t *testing.T) {
	spec := traffic.Spec{Model: traffic.ModelOnOff, RateBps: 2e6}
	run := func() []byte {
		w := testWorld(t, true, campusUEs())
		rep, err := w.ServeTraffic(1, 1, spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatal("identical worlds produced different traffic reports")
	}
}

func TestServeTrafficStridedGrantScaling(t *testing.T) {
	// With a stride the scheduler runs 1/stride as many TTIs but each
	// grant is scaled by the stride; delivered volume must stay within
	// a few percent of the unstrided run.
	spec := traffic.Spec{Model: traffic.ModelCBR, RateBps: 1e6}
	w1 := testWorld(t, true, campusUEs())
	r1, err := w1.ServeTraffic(2, 1, spec)
	if err != nil {
		t.Fatal(err)
	}
	w2 := testWorld(t, true, campusUEs())
	r2, err := w2.ServeTraffic(2, 10, spec)
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := float64(r1.Summary.DeliveredBytes), float64(r2.Summary.DeliveredBytes)
	if d1 == 0 || math.Abs(d1-d2)/d1 > 0.05 {
		t.Fatalf("strided delivery %g vs %g diverges", d2, d1)
	}
}
