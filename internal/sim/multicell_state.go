package sim

import (
	"fmt"

	"repro/internal/detrand"
	"repro/internal/enb"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/ue"
)

// MultiState is the fleet world's complete serializable state. Unlike
// WorldState it must carry the cell positions and the UE↔cell map:
// handovers reshuffle which cell owns which context, so the layout is
// simulation state, not configuration.
type MultiState struct {
	Clock      float64
	ServePhase uint64

	RNG         detrand.State
	MobilityRNG detrand.State
	PlaceRNG    detrand.State

	UEs      []ue.State
	Cells    []enb.State
	CellPos  []geom.Vec3
	Serving  []int
	Handover enb.HandoverEngineState

	Faults *fault.State
}

// Snapshot captures the fleet state at a quiescent point.
func (m *MultiCell) Snapshot() MultiState {
	st := MultiState{
		Clock:       m.Clock,
		ServePhase:  m.servePhase,
		RNG:         m.rng.State(),
		MobilityRNG: m.mrng.State(),
		PlaceRNG:    m.placeRNG.State(),
		CellPos:     append([]geom.Vec3(nil), m.Graph.Cells...),
		Serving:     append([]int(nil), m.Serving...),
		Handover:    m.HO.Snapshot(),
	}
	for _, u := range m.UEs {
		st.UEs = append(st.UEs, u.Snapshot())
	}
	for _, c := range m.Cells {
		st.Cells = append(st.Cells, c.Snapshot())
	}
	if m.Faults != nil {
		fs := m.Faults.Snapshot()
		st.Faults = &fs
	}
	return st
}

// Restore reinstates a snapshot into a fleet built from the same
// configuration. Cell contexts are rebuilt cold (RestoreCold) because
// the checkpointed attach layout — which UE lives in which cell, under
// which RNTI — generally differs from the freshly constructed one.
func (m *MultiCell) Restore(st MultiState) error {
	if len(st.UEs) != len(m.UEs) {
		return fmt.Errorf("sim: snapshot has %d UEs, fleet has %d", len(st.UEs), len(m.UEs))
	}
	if len(st.Cells) != m.NCells || len(st.CellPos) != m.NCells || len(st.Serving) != len(m.UEs) {
		return fmt.Errorf("sim: snapshot shape mismatch: %d cells/%d positions/%d serving, fleet has %d cells/%d UEs",
			len(st.Cells), len(st.CellPos), len(st.Serving), m.NCells, len(m.UEs))
	}
	if err := m.rng.Restore(st.RNG); err != nil {
		return fmt.Errorf("sim: measurement RNG: %w", err)
	}
	if err := m.mrng.Restore(st.MobilityRNG); err != nil {
		return fmt.Errorf("sim: mobility RNG: %w", err)
	}
	if err := m.placeRNG.Restore(st.PlaceRNG); err != nil {
		return fmt.Errorf("sim: placement RNG: %w", err)
	}
	for i, u := range m.UEs {
		if err := u.Restore(st.UEs[i]); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	for c, cs := range st.Cells {
		if err := m.Cells[c].RestoreCold(cs, m.Core.Session); err != nil {
			return fmt.Errorf("sim: cell %d: %w", c, err)
		}
	}
	for c, pos := range st.CellPos {
		m.Graph.SetCell(c, pos)
	}
	copy(m.Serving, st.Serving)
	if err := m.HO.Restore(st.Handover); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if st.Faults != nil {
		if m.Faults == nil {
			return fmt.Errorf("sim: snapshot carries fault state but the fleet has no fault schedule")
		}
		if err := m.Faults.Restore(*st.Faults); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	m.Clock = st.Clock
	m.servePhase = st.ServePhase
	return nil
}
