// Package detrand provides deterministic, checkpointable random
// streams. A Rand is a drop-in *math/rand.Rand whose source counts
// every draw: its complete state is (seed, draws), so a checkpoint
// stores two integers instead of serializing generator internals, and
// a restore re-derives the stream lazily — rebuild the source from the
// seed and fast-forward past the draws already consumed. The wrapped
// source is the stdlib one, so streams are bit-identical to
// rand.New(rand.NewSource(seed)): swapping detrand in changes no
// simulation output.
package detrand

import (
	"fmt"
	"math/rand"
)

// State is the complete serializable state of a Rand.
type State struct {
	// Seed is the seed the stream was created with.
	Seed int64
	// Draws is the number of source draws consumed so far.
	Draws uint64
}

// source wraps the stdlib source and counts draws. Every public
// rand.Rand method bottoms out in Int63 or Uint64, and on the stdlib
// source both advance the generator by exactly one step, so the count
// alone pins the stream position.
type source struct {
	src rand.Source64
	n   uint64
}

func (s *source) Int63() int64 {
	s.n++
	return s.src.Int63()
}

func (s *source) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

func (s *source) Seed(seed int64) {
	s.src.Seed(seed)
	s.n = 0
}

// Rand is a counting random stream. It embeds *rand.Rand, so it is
// usable anywhere a *rand.Rand is (the embedded field passes to APIs
// taking *rand.Rand directly). Do not call Seed or Read on it: Seed
// breaks the seed/state correspondence and Read keeps hidden buffer
// state outside the draw count.
type Rand struct {
	*rand.Rand
	seed int64
	src  *source
}

// New returns a counting stream seeded like rand.New(rand.NewSource(seed)).
func New(seed int64) *Rand {
	src := &source{src: rand.NewSource(seed).(rand.Source64)}
	return &Rand{Rand: rand.New(src), seed: seed, src: src}
}

// Seed returns the stream's seed.
func (r *Rand) Seed() int64 { return r.seed }

// Draws returns the number of source draws consumed so far.
func (r *Rand) Draws() uint64 { return r.src.n }

// State snapshots the stream.
func (r *Rand) State() State { return State{Seed: r.seed, Draws: r.src.n} }

// Restore fast-forwards the stream to st. The stream must have been
// created with the same seed and must not have advanced past st —
// restore never rewinds; it is meant to be applied to a freshly
// constructed stream (or one that has only replayed a deterministic
// prefix of its history).
func (r *Rand) Restore(st State) error {
	if st.Seed != r.seed {
		return fmt.Errorf("detrand: restoring state for seed %d into stream seeded %d", st.Seed, r.seed)
	}
	if st.Draws < r.src.n {
		return fmt.Errorf("detrand: cannot rewind stream from %d to %d draws", r.src.n, st.Draws)
	}
	for r.src.n < st.Draws {
		r.src.Uint64()
	}
	return nil
}
