package detrand

import (
	"math/rand"
	"testing"
)

// The wrapped stream must be bit-identical to the stdlib stream for the
// same seed — detrand is a drop-in, not a new generator.
func TestMatchesStdlibStream(t *testing.T) {
	ref := rand.New(rand.NewSource(42))
	r := New(42)
	for i := 0; i < 1000; i++ {
		switch i % 5 {
		case 0:
			if a, b := ref.Float64(), r.Float64(); a != b {
				t.Fatalf("draw %d: Float64 %v != %v", i, b, a)
			}
		case 1:
			if a, b := ref.NormFloat64(), r.NormFloat64(); a != b {
				t.Fatalf("draw %d: NormFloat64 %v != %v", i, b, a)
			}
		case 2:
			if a, b := ref.ExpFloat64(), r.ExpFloat64(); a != b {
				t.Fatalf("draw %d: ExpFloat64 %v != %v", i, b, a)
			}
		case 3:
			if a, b := ref.Intn(1000), r.Intn(1000); a != b {
				t.Fatalf("draw %d: Intn %v != %v", i, b, a)
			}
		case 4:
			if a, b := ref.Uint64(), r.Uint64(); a != b {
				t.Fatalf("draw %d: Uint64 %v != %v", i, b, a)
			}
		}
	}
}

func TestSnapshotRestoreResumesStream(t *testing.T) {
	r := New(7)
	for i := 0; i < 257; i++ {
		r.NormFloat64()
	}
	st := r.State()
	var want []float64
	for i := 0; i < 100; i++ {
		want = append(want, r.Float64())
	}

	fresh := New(7)
	if err := fresh.Restore(st); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for i, w := range want {
		if g := fresh.Float64(); g != w {
			t.Fatalf("resumed draw %d: %v, want %v", i, g, w)
		}
	}
}

func TestRestoreRejectsSeedMismatchAndRewind(t *testing.T) {
	r := New(1)
	if err := r.Restore(State{Seed: 2, Draws: 0}); err == nil {
		t.Fatal("Restore accepted a state from a different seed")
	}
	r.Float64()
	r.Float64()
	if err := r.Restore(State{Seed: 1, Draws: 1}); err == nil {
		t.Fatal("Restore accepted a rewind")
	}
}

func TestDrawsCountsEveryMethod(t *testing.T) {
	r := New(3)
	if r.Draws() != 0 {
		t.Fatalf("fresh stream has %d draws", r.Draws())
	}
	r.Float64()
	if r.Draws() == 0 {
		t.Fatal("Float64 did not count a draw")
	}
	before := r.Draws()
	r.NormFloat64() // may consume several source draws (ziggurat)
	if r.Draws() <= before {
		t.Fatal("NormFloat64 did not count draws")
	}
}
