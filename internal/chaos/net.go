package chaos

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/metrics"
)

// NetConfig parameterizes the seeded network-chaos transport. All
// rates are probabilities in [0, 1]; an all-zero config (no rates, no
// partitioned hosts) is inert — NewTransport then returns the base
// transport itself, so the chaos layer is bitwise absent.
type NetConfig struct {
	// Seed keys every injection decision (0 picks a fixed default).
	Seed int64
	// LatencyRate is the probability one request is delayed by a
	// seeded fraction of LatencyMax before being sent.
	LatencyRate float64
	// LatencyMax bounds injected latency (default 200ms when
	// LatencyRate > 0).
	LatencyMax time.Duration
	// ResetRate is the probability a request fails before it is sent,
	// as a dropped/reset connection would.
	ResetRate float64
	// TruncateRate is the probability a response body is cut short,
	// ending in io.ErrUnexpectedEOF — a mid-transfer link loss.
	TruncateRate float64
	// PartitionRate is the probability one request is black-holed
	// entirely (keyed per (seed, endpoint, attempt) like the rest).
	PartitionRate float64
	// PartitionHosts lists endpoints ("host:port") that become fully
	// unreachable — every request errors — once PartitionAfter has
	// elapsed since the transport was built. This is the targeted
	// partition the chaosnet smoke tier uses to cut one worker off
	// mid-campaign.
	PartitionHosts []string
	// PartitionAfter delays the PartitionHosts partition (0 = from the
	// first request).
	PartitionAfter time.Duration
}

// Active reports whether any chaos knob is on.
func (c *NetConfig) Active() bool {
	if c == nil {
		return false
	}
	return rate(c.LatencyRate) > 0 || rate(c.ResetRate) > 0 ||
		rate(c.TruncateRate) > 0 || rate(c.PartitionRate) > 0 ||
		len(c.PartitionHosts) > 0
}

// Validate rejects rates outside [0, 1]. A nil config is valid (off).
func (c *NetConfig) Validate() error {
	if c == nil {
		return nil
	}
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"latency", c.LatencyRate},
		{"reset", c.ResetRate},
		{"truncate", c.TruncateRate},
		{"partition", c.PartitionRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("chaos: net %s rate %g outside [0, 1]", r.name, r.v)
		}
	}
	return nil
}

// netError is an injected transport failure; the shared client treats
// it like any other network error (transient, retried under backoff).
type netError struct{ msg string }

func (e *netError) Error() string   { return e.msg }
func (e *netError) Timeout() bool   { return true }
func (e *netError) Temporary() bool { return true }

// Transport is the seeded chaos http.RoundTripper. Decisions are keyed
// per (seed, endpoint host, attempt) where attempt counts requests this
// transport has sent to that host, so a retried call sees fresh — but
// reproducible — randomness.
type Transport struct {
	cfg   NetConfig
	base  http.RoundTripper
	start time.Time
	parts map[string]bool

	mu       sync.Mutex
	attempts map[string]uint64

	mLatency *metrics.Counter
	mResets  *metrics.Counter
	mTruncs  *metrics.Counter
	mParts   *metrics.Counter
}

// NewTransport wraps base (nil selects http.DefaultTransport) with the
// chaos layer. An inactive config returns base unchanged — zero
// schedule, zero layer. reg receives skyran_chaos_net_* counters (nil
// creates a private registry).
func NewTransport(cfg NetConfig, base http.RoundTripper, reg *metrics.Registry) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	if !cfg.Active() {
		return base
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x5eed
	}
	if cfg.LatencyMax <= 0 {
		cfg.LatencyMax = 200 * time.Millisecond
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	t := &Transport{
		cfg:      cfg,
		base:     base,
		start:    time.Now(),
		parts:    make(map[string]bool, len(cfg.PartitionHosts)),
		attempts: make(map[string]uint64),
		mLatency: reg.Counter("skyran_chaos_net_latency_injections_total", "Requests delayed by the network chaos layer."),
		mResets:  reg.Counter("skyran_chaos_net_resets_total", "Requests failed with an injected connection reset."),
		mTruncs:  reg.Counter("skyran_chaos_net_truncations_total", "Response bodies truncated by the network chaos layer."),
		mParts:   reg.Counter("skyran_chaos_net_partition_drops_total", "Requests black-holed by a network partition."),
	}
	for _, h := range cfg.PartitionHosts {
		t.parts[h] = true
	}
	return t
}

// nextAttempt returns this host's request ordinal (0-based).
func (t *Transport) nextAttempt(host string) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.attempts[host]
	t.attempts[host] = n + 1
	return n
}

// RoundTrip injects at most one fault per request, checked in severity
// order: partition, reset, latency (then the request is sent), and
// body truncation on the way back.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	attempt := t.nextAttempt(host)

	if t.parts[host] && time.Since(t.start) >= t.cfg.PartitionAfter {
		t.mParts.Inc()
		return nil, &netError{fmt.Sprintf("chaos: %s partitioned", host)}
	}
	if draw(t.cfg.Seed, host, attempt, domPartition) < rate(t.cfg.PartitionRate) {
		t.mParts.Inc()
		return nil, &netError{fmt.Sprintf("chaos: request to %s dropped (partition)", host)}
	}
	if draw(t.cfg.Seed, host, attempt, domReset) < rate(t.cfg.ResetRate) {
		t.mResets.Inc()
		return nil, &netError{fmt.Sprintf("chaos: connection to %s reset", host)}
	}
	if draw(t.cfg.Seed, host, attempt, domLatency) < rate(t.cfg.LatencyRate) {
		t.mLatency.Inc()
		frac := draw(t.cfg.Seed, host, attempt, domFrac)
		d := time.Duration(frac * float64(t.cfg.LatencyMax))
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil || resp == nil || resp.Body == nil {
		return resp, err
	}
	if draw(t.cfg.Seed, host, attempt, domTruncate) < rate(t.cfg.TruncateRate) {
		t.mTruncs.Inc()
		frac := draw(t.cfg.Seed, host, attempt, domFrac)
		keep := int64(1 + frac*1024)
		if resp.ContentLength > 0 {
			keep = 1 + int64(frac*float64(resp.ContentLength-1))
		}
		resp.Body = &truncatedBody{rc: resp.Body, remaining: keep}
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
	}
	return resp, nil
}

// truncatedBody serves a prefix of the real body, then fails like a
// dropped link: io.ErrUnexpectedEOF, never a clean EOF.
type truncatedBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= int64(n)
	if err == io.EOF {
		// The real body ended inside the kept prefix: nothing was
		// actually cut, but the contract is a torn transfer.
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }
