package chaos

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/metrics"
)

func render(t *testing.T, reg *metrics.Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatalf("rendering metrics: %v", err)
	}
	return buf.String()
}

func TestDrawDeterministicAndUniform(t *testing.T) {
	a := draw(42, "w1:8080", 3, domReset)
	b := draw(42, "w1:8080", 3, domReset)
	if a != b {
		t.Fatalf("same key drew %v then %v", a, b)
	}
	if a < 0 || a >= 1 {
		t.Fatalf("draw out of [0,1): %v", a)
	}
	// Different domains, attempts, sites and seeds must decorrelate.
	for name, other := range map[string]float64{
		"domain":  draw(42, "w1:8080", 3, domLatency),
		"attempt": draw(42, "w1:8080", 4, domReset),
		"site":    draw(42, "w2:8080", 3, domReset),
		"seed":    draw(43, "w1:8080", 3, domReset),
	} {
		if other == a {
			t.Errorf("changing %s did not change the draw", name)
		}
	}
}

func TestAllZeroNetConfigIsBitwiseNoop(t *testing.T) {
	base := http.DefaultTransport
	if got := NewTransport(NetConfig{}, base, nil); got != base {
		t.Fatalf("all-zero config wrapped the transport: %T", got)
	}
	if got := NewTransport(NetConfig{Seed: 99}, base, nil); got != base {
		t.Fatalf("seed-only config wrapped the transport: %T", got)
	}
	if inj := NewDiskInjector(DiskConfig{Seed: 99}, nil); inj != nil {
		t.Fatalf("all-zero disk config built an injector")
	}
	var nilInj *DiskInjector
	in := []byte("payload")
	out, err := nilInj.Mutate("/x/file", in)
	if err != nil || !bytes.Equal(out, in) {
		t.Fatalf("nil injector mutated the write: %q %v", out, err)
	}
}

func TestNetValidate(t *testing.T) {
	if err := (&NetConfig{ResetRate: 1.5}).Validate(); err == nil {
		t.Fatal("rate 1.5 accepted")
	}
	if err := (&NetConfig{LatencyRate: -0.1}).Validate(); err == nil {
		t.Fatal("rate -0.1 accepted")
	}
	if err := (&NetConfig{ResetRate: 0.5}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := (&DiskConfig{ENOSPCRate: 2}).Validate(); err == nil {
		t.Fatal("disk rate 2 accepted")
	}
}

func TestTransportResetAndSchedule(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	reg := metrics.NewRegistry()
	rt := NewTransport(NetConfig{Seed: 7, ResetRate: 0.5}, nil, reg)
	cl := &http.Client{Transport: rt}

	// Record which attempts fail, then replay with a fresh transport at
	// the same seed: the schedule must match exactly.
	run := func(rt http.RoundTripper) []bool {
		cl := &http.Client{Transport: rt}
		var failed []bool
		for i := 0; i < 20; i++ {
			resp, err := cl.Get(srv.URL)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			failed = append(failed, err != nil)
		}
		return failed
	}
	first := run(cl.Transport)
	second := run(NewTransport(NetConfig{Seed: 7, ResetRate: 0.5}, nil, metrics.NewRegistry()))
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("schedule diverged at attempt %d: %v vs %v", i, first, second)
		}
	}
	var resets int
	for _, f := range first {
		if f {
			resets++
		}
	}
	if resets == 0 || resets == len(first) {
		t.Fatalf("rate 0.5 gave %d/%d resets — not injecting or injecting always", resets, len(first))
	}
	if !strings.Contains(render(t, reg), "skyran_chaos_net_resets_total") {
		t.Fatal("reset counter not registered")
	}
}

func TestTransportPartitionHosts(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	rt := NewTransport(NetConfig{Seed: 1, PartitionHosts: []string{host}}, nil, nil)
	cl := &http.Client{Transport: rt}
	if _, err := cl.Get(srv.URL); err == nil {
		t.Fatal("partitioned host served a request")
	}

	// A delayed partition lets early requests through.
	rt = NewTransport(NetConfig{Seed: 1, PartitionHosts: []string{host}, PartitionAfter: time.Hour}, nil, nil)
	cl = &http.Client{Transport: rt}
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatalf("pre-partition request failed: %v", err)
	}
	resp.Body.Close()

	// Other hosts are unaffected.
	rt = NewTransport(NetConfig{Seed: 1, PartitionHosts: []string{"203.0.113.1:9"}}, nil, nil)
	cl = &http.Client{Transport: rt}
	if resp, err := cl.Get(srv.URL); err != nil {
		t.Fatalf("unpartitioned host failed: %v", err)
	} else {
		resp.Body.Close()
	}
}

func TestTransportTruncation(t *testing.T) {
	const body = "0123456789abcdef0123456789abcdef"
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	defer srv.Close()

	reg := metrics.NewRegistry()
	cl := &http.Client{Transport: NewTransport(NetConfig{Seed: 3, TruncateRate: 1}, nil, reg)}
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatalf("request failed: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated body ended with %v, want ErrUnexpectedEOF", err)
	}
	if len(b) >= len(body) {
		t.Fatalf("body not truncated: got %d bytes of %d", len(b), len(body))
	}
	if string(b) != body[:len(b)] {
		t.Fatalf("truncation altered bytes: %q", b)
	}
}

func TestTransportLatency(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	reg := metrics.NewRegistry()
	cl := &http.Client{Transport: NewTransport(NetConfig{Seed: 5, LatencyRate: 1, LatencyMax: 5 * time.Millisecond}, nil, reg)}
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatalf("request failed: %v", err)
	}
	resp.Body.Close()
	if got := render(t, reg); !strings.Contains(got, "skyran_chaos_net_latency_injections_total 1") {
		t.Fatalf("latency injection not counted:\n%s", got)
	}
}

func TestDiskInjectorFaults(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAA}, 256)

	enospc := NewDiskInjector(DiskConfig{Seed: 11, ENOSPCRate: 1}, nil)
	if _, err := enospc.Mutate("/tmp/a.ckpt", payload); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("ENOSPC rate 1 returned %v", err)
	}

	torn := NewDiskInjector(DiskConfig{Seed: 11, TornRate: 1}, nil)
	out, err := torn.Mutate("/tmp/a.ckpt", payload)
	if err != nil {
		t.Fatalf("torn write errored: %v", err)
	}
	if len(out) >= len(payload) {
		t.Fatalf("torn write kept %d of %d bytes", len(out), len(payload))
	}
	if !bytes.Equal(out, payload[:len(out)]) {
		t.Fatal("torn write is not a prefix")
	}

	flip := NewDiskInjector(DiskConfig{Seed: 11, BitFlipRate: 1}, nil)
	out, err = flip.Mutate("/tmp/a.ckpt", payload)
	if err != nil {
		t.Fatalf("bit flip errored: %v", err)
	}
	if len(out) != len(payload) {
		t.Fatalf("bit flip changed length: %d", len(out))
	}
	diff := 0
	for i := range out {
		if out[i] != payload[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("bit flip changed %d bytes, want 1", diff)
	}
	// The source buffer must be untouched.
	if !bytes.Equal(payload, bytes.Repeat([]byte{0xAA}, 256)) {
		t.Fatal("Mutate modified the caller's buffer")
	}
}

func TestDiskInjectorDeterministicPerSite(t *testing.T) {
	run := func() []bool {
		inj := NewDiskInjector(DiskConfig{Seed: 21, ENOSPCRate: 0.5}, nil)
		var failed []bool
		for i := 0; i < 32; i++ {
			_, err := inj.Mutate("/a/journal.json", []byte("x"))
			failed = append(failed, err != nil)
		}
		return failed
	}
	first, second := run(), run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("disk schedule diverged at op %d", i)
		}
	}
	// The site key is the base name: the same file under another parent
	// must see the same schedule.
	inj := NewDiskInjector(DiskConfig{Seed: 21, ENOSPCRate: 0.5}, nil)
	var moved []bool
	for i := 0; i < 32; i++ {
		_, err := inj.Mutate("/elsewhere/journal.json", []byte("x"))
		moved = append(moved, err != nil)
	}
	for i := range first {
		if first[i] != moved[i] {
			t.Fatalf("schedule depends on the directory, not the file (op %d)", i)
		}
	}
}
