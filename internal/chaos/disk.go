package chaos

import (
	"fmt"
	"path/filepath"
	"sync"
	"syscall"

	"repro/internal/metrics"
)

// DiskConfig parameterizes the seeded disk-fault injector that sits
// under checkpoint/journal writes. Rates are probabilities in [0, 1];
// an all-zero config installs nothing, leaving the write path
// bitwise-identical to a build without the chaos layer.
type DiskConfig struct {
	// Seed keys every injection decision (0 picks a fixed default).
	Seed int64
	// TornRate is the probability a write commits only a seeded prefix
	// of its bytes — the on-disk image a crash between write and sync
	// leaves behind.
	TornRate float64
	// ENOSPCRate is the probability a write fails with ENOSPC before
	// touching the file.
	ENOSPCRate float64
	// BitFlipRate is the probability one seeded bit of the payload is
	// inverted — silent media corruption the CRC ladder must catch.
	BitFlipRate float64
}

// Active reports whether any disk-fault knob is on.
func (c *DiskConfig) Active() bool {
	if c == nil {
		return false
	}
	return rate(c.TornRate) > 0 || rate(c.ENOSPCRate) > 0 || rate(c.BitFlipRate) > 0
}

// Validate rejects rates outside [0, 1]. A nil config is valid (off).
func (c *DiskConfig) Validate() error {
	if c == nil {
		return nil
	}
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"torn", c.TornRate},
		{"enospc", c.ENOSPCRate},
		{"bitflip", c.BitFlipRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("chaos: disk %s rate %g outside [0, 1]", r.name, r.v)
		}
	}
	return nil
}

// DiskInjector mutates (or fails) file writes deterministically.
// Decisions are keyed per (seed, file base name, write ordinal at that
// name), so a rewritten journal entry sees fresh but reproducible
// randomness, and the schedule does not depend on which temp directory
// a test mounted the tree under.
type DiskInjector struct {
	cfg DiskConfig

	mu  sync.Mutex
	ops map[string]uint64

	mTorn   *metrics.Counter
	mENOSPC *metrics.Counter
	mFlips  *metrics.Counter
}

// NewDiskInjector builds an injector, or nil when cfg is inactive —
// callers install nil as "no hook", keeping the clean path untouched.
// reg receives skyran_chaos_disk_* counters (nil creates a private
// registry).
func NewDiskInjector(cfg DiskConfig, reg *metrics.Registry) *DiskInjector {
	if !cfg.Active() {
		return nil
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x5eed
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &DiskInjector{
		cfg:     cfg,
		ops:     make(map[string]uint64),
		mTorn:   reg.Counter("skyran_chaos_disk_torn_writes_total", "Writes committed with a truncated payload by the disk chaos layer."),
		mENOSPC: reg.Counter("skyran_chaos_disk_enospc_total", "Writes failed with an injected ENOSPC."),
		mFlips:  reg.Counter("skyran_chaos_disk_bitflips_total", "Writes with one payload bit inverted by the disk chaos layer."),
	}
}

// Mutate applies at most one fault to a pending write of data at path:
// an ENOSPC error, a torn (prefix-only) payload, or a single flipped
// bit. The returned slice is the bytes to actually commit; data itself
// is never modified. A nil injector passes everything through.
func (d *DiskInjector) Mutate(path string, data []byte) ([]byte, error) {
	if d == nil {
		return data, nil
	}
	site := filepath.Base(path)
	d.mu.Lock()
	op := d.ops[site]
	d.ops[site] = op + 1
	d.mu.Unlock()

	if draw(d.cfg.Seed, site, op, domENOSPC) < rate(d.cfg.ENOSPCRate) {
		d.mENOSPC.Inc()
		return nil, fmt.Errorf("chaos: writing %s: %w", path, syscall.ENOSPC)
	}
	if draw(d.cfg.Seed, site, op, domTorn) < rate(d.cfg.TornRate) {
		d.mTorn.Inc()
		frac := draw(d.cfg.Seed, site, op, domFrac)
		return data[:int(frac*float64(len(data)))], nil
	}
	if draw(d.cfg.Seed, site, op, domBitFlip) < rate(d.cfg.BitFlipRate) && len(data) > 0 {
		d.mFlips.Inc()
		frac := draw(d.cfg.Seed, site, op, domFrac)
		bit := uint64(frac * float64(len(data)*8))
		out := make([]byte, len(data))
		copy(out, data)
		out[bit/8] ^= 1 << (bit % 8)
		return out, nil
	}
	return data, nil
}
