// Package chaos injects deterministic failures into the two domains
// field deployments report as dominant and the rest of the tree could
// not yet test: the network between coordinator and workers, and the
// disk under checkpoints and journals. Every injection decision is a
// pure function of (seed, site, attempt) — the same splitmix64-keyed
// discipline internal/fault uses for radio faults — so a chaos run
// replays exactly under a fixed seed, and an all-zero schedule is
// bitwise-identical to running with no chaos layer at all.
package chaos

import (
	"hash/fnv"
	"math"
)

// drawDomain separates the independent decision streams so that, e.g.,
// raising the reset rate never shifts which requests see latency.
type drawDomain uint64

const (
	domLatency drawDomain = iota + 1
	domReset
	domTruncate
	domPartition
	domTorn
	domENOSPC
	domBitFlip
	domFrac // secondary draw: delay fraction, cut point, flipped bit
)

// splitmix64 is the finalizer used across the repo's seeded streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d4b28f966dd52d
	return x ^ (x >> 31)
}

// draw maps (seed, site, attempt, domain) to a uniform float64 in
// [0, 1). site names the injection point (an endpoint host, a file
// name); attempt counts prior operations at that site, so retries and
// later writes see fresh, but still reproducible, randomness.
func draw(seed int64, site string, attempt uint64, dom drawDomain) float64 {
	h := fnv.New64a()
	h.Write([]byte(site)) //nolint:errcheck // fnv never errors
	x := splitmix64(uint64(seed) ^ splitmix64(h.Sum64()^splitmix64(attempt^uint64(dom)<<56)))
	return float64(x>>11) / float64(1<<53)
}

// rate clamps a configured probability into [0, 1].
func rate(p float64) float64 {
	if math.IsNaN(p) || p <= 0 {
		return 0
	}
	return math.Min(p, 1)
}
