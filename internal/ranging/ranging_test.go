package ranging

import (
	"testing"

	"repro/internal/geom"
)

func TestCollectorAverages(t *testing.T) {
	var c Collector
	c.AddGPS(geom.V3(0, 0, 50))
	c.AddRange(100)
	c.AddRange(102)
	c.AddGPS(geom.V3(1, 0, 50))
	c.AddRange(98)
	ts := c.Tuples()
	if len(ts) != 2 {
		t.Fatalf("tuples = %d, want 2", len(ts))
	}
	if ts[0].RangeM != 101 || ts[0].Samples != 2 {
		t.Errorf("tuple 0 = %+v", ts[0])
	}
	if ts[0].UAVPos != geom.V3(0, 0, 50) {
		t.Errorf("tuple 0 pos = %v", ts[0].UAVPos)
	}
	if ts[1].RangeM != 98 || ts[1].Samples != 1 {
		t.Errorf("tuple 1 = %+v", ts[1])
	}
}

func TestCollectorDiscardsOrphanRanges(t *testing.T) {
	var c Collector
	c.AddRange(55) // before any GPS: dropped
	c.AddGPS(geom.V3(0, 0, 10))
	c.AddRange(60)
	ts := c.Tuples()
	if len(ts) != 1 || ts[0].RangeM != 60 {
		t.Errorf("tuples = %+v", ts)
	}
}

func TestCollectorEmptyWindowsSkipped(t *testing.T) {
	var c Collector
	c.AddGPS(geom.V3(0, 0, 10))
	c.AddGPS(geom.V3(1, 0, 10)) // no ranges in the first window
	c.AddRange(70)
	ts := c.Tuples()
	if len(ts) != 1 {
		t.Fatalf("tuples = %d, want 1 (empty window skipped)", len(ts))
	}
	if ts[0].UAVPos.X != 1 {
		t.Error("tuple should belong to the second window")
	}
}

func TestTuplesIdempotentSnapshot(t *testing.T) {
	var c Collector
	c.AddGPS(geom.V3(0, 0, 1))
	c.AddRange(10)
	a := c.Tuples()
	b := c.Tuples()
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("snapshots %d, %d", len(a), len(b))
	}
	a[0].RangeM = 999
	if c.Tuples()[0].RangeM != 10 {
		t.Error("Tuples must return a copy")
	}
}

func TestCollectorContinuesAfterTuples(t *testing.T) {
	var c Collector
	c.AddGPS(geom.V3(0, 0, 1))
	c.AddRange(10)
	_ = c.Tuples()
	// After snapshot, a stray range without a fresh GPS must be dropped.
	c.AddRange(20)
	c.AddGPS(geom.V3(2, 0, 1))
	c.AddRange(30)
	ts := c.Tuples()
	if len(ts) != 2 || ts[1].RangeM != 30 {
		t.Errorf("tuples = %+v", ts)
	}
}

func TestReset(t *testing.T) {
	var c Collector
	c.AddGPS(geom.V3(0, 0, 1))
	c.AddRange(10)
	c.Reset()
	if len(c.Tuples()) != 0 {
		t.Error("reset should clear tuples")
	}
}

func TestDecimate(t *testing.T) {
	ts := make([]Tuple, 10)
	for i := range ts {
		ts[i].RangeM = float64(i)
	}
	d := Decimate(ts, 3)
	if len(d) != 4 || d[1].RangeM != 3 {
		t.Errorf("decimate = %+v", d)
	}
	if got := Decimate(ts, 1); len(got) != 10 {
		t.Error("k=1 should be identity")
	}
	if got := Decimate(ts, 0); len(got) != 10 {
		t.Error("k=0 should be identity")
	}
}
