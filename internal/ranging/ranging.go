// Package ranging assembles the GPS-ToF tuple stream of §3.2.2: the
// UAV reads its GPS at 50 Hz and receives SRS-derived ranges at 100 Hz,
// so the M ToF values observed between consecutive GPS reports are
// averaged and assigned to the report that opened the window, yielding
// one (position, range) tuple per GPS sample. The multilateration
// solver in package locate consumes these tuples.
package ranging

import "repro/internal/geom"

// Tuple pairs a UAV GPS position with the mean SRS range observed
// while the UAV was at (near) that position. Range includes the
// unknown constant processing offset; locate solves for it.
type Tuple struct {
	UAVPos geom.Vec3
	RangeM float64
	// Samples is the number of ToF values averaged into RangeM.
	Samples int
}

// Collector builds Tuples from interleaved GPS and ToF streams for a
// single UE. The zero value is ready to use.
type Collector struct {
	tuples  []Tuple
	curPos  geom.Vec3
	havePos bool
	sum     float64
	count   int
}

// AddGPS records a new UAV GPS report, closing the previous averaging
// window (emitting its tuple if any ToFs arrived) and opening a new
// one at pos.
func (c *Collector) AddGPS(pos geom.Vec3) {
	c.flush()
	c.curPos = pos
	c.havePos = true
}

// AddRange records one SRS-derived range measurement (metres,
// offset included). Measurements arriving before the first GPS report
// are discarded: they cannot be attributed to a position.
func (c *Collector) AddRange(rangeM float64) {
	if !c.havePos {
		return
	}
	c.sum += rangeM
	c.count++
}

// flush emits the pending window as a tuple.
func (c *Collector) flush() {
	if c.havePos && c.count > 0 {
		c.tuples = append(c.tuples, Tuple{
			UAVPos:  c.curPos,
			RangeM:  c.sum / float64(c.count),
			Samples: c.count,
		})
	}
	c.sum, c.count = 0, 0
}

// Tuples closes the current window and returns all tuples collected so
// far. The collector remains usable; subsequent GPS/range calls append
// new tuples.
func (c *Collector) Tuples() []Tuple {
	c.flush()
	c.havePos = false
	out := make([]Tuple, len(c.tuples))
	copy(out, c.tuples)
	return out
}

// Reset discards all state.
func (c *Collector) Reset() {
	*c = Collector{}
}

// Decimate returns every k-th tuple (k >= 1), used to study the impact
// of measurement density on localization accuracy.
func Decimate(ts []Tuple, k int) []Tuple {
	if k <= 1 {
		return ts
	}
	var out []Tuple
	for i := 0; i < len(ts); i += k {
		out = append(out, ts[i])
	}
	return out
}
