package ue

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestStaticUE(t *testing.T) {
	u := New(1, geom.V2(10, 10))
	rng := rand.New(rand.NewSource(1))
	u.Step(100, rng)
	if u.Pos != geom.V2(10, 10) {
		t.Error("static UE moved")
	}
	u.Mobility = Static{}
	u.Step(100, rng)
	if u.Pos != geom.V2(10, 10) {
		t.Error("Static mobility moved")
	}
	if u.String() == "" {
		t.Error("stringer empty")
	}
}

func TestRouteWalksAtSpeed(t *testing.T) {
	r := NewRoute([]geom.Vec2{geom.V2(10, 0), geom.V2(10, 10)}, 2, false)
	u := New(1, geom.V2(0, 0))
	u.Mobility = r
	rng := rand.New(rand.NewSource(1))
	u.Step(1, rng) // 2 m along +x
	if u.Pos.Dist(geom.V2(2, 0)) > 1e-9 {
		t.Errorf("pos = %v, want (2,0)", u.Pos)
	}
	u.Step(5, rng) // 10 more metres: reach (10,0) then 2 up
	if u.Pos.Dist(geom.V2(10, 2)) > 1e-9 {
		t.Errorf("pos = %v, want (10,2)", u.Pos)
	}
	u.Step(100, rng) // finish and stop (no loop)
	if u.Pos != geom.V2(10, 10) {
		t.Errorf("final pos = %v", u.Pos)
	}
}

func TestRouteLoops(t *testing.T) {
	r := NewRoute([]geom.Vec2{geom.V2(10, 0), geom.V2(0, 0)}, 1, true)
	u := New(1, geom.V2(0, 0))
	u.Mobility = r
	rng := rand.New(rand.NewSource(1))
	u.Step(20, rng) // one full loop: back at origin
	if u.Pos.Dist(geom.V2(0, 0)) > 1e-9 {
		t.Errorf("after one loop pos = %v", u.Pos)
	}
	u.Step(5, rng)
	if u.Pos.Dist(geom.V2(5, 0)) > 1e-9 {
		t.Errorf("mid second loop pos = %v", u.Pos)
	}
}

func TestRouteDefaultSpeed(t *testing.T) {
	r := NewRoute([]geom.Vec2{geom.V2(100, 0)}, 0, false)
	if r.SpeedMS != 1.4 {
		t.Errorf("default speed = %v", r.SpeedMS)
	}
}

func TestRandomWaypointStaysInArea(t *testing.T) {
	area := geom.Rect{MinX: 0, MinY: 0, MaxX: 50, MaxY: 50}
	m := NewRandomWaypoint(area, 3, 1)
	u := New(1, geom.V2(25, 25))
	u.Mobility = m
	rng := rand.New(rand.NewSource(2))
	moved := false
	for i := 0; i < 500; i++ {
		prev := u.Pos
		u.Step(1, rng)
		if !area.Contains(u.Pos) && u.Pos != area.Clamp(u.Pos) {
			t.Fatalf("UE escaped area: %v", u.Pos)
		}
		if u.Pos != prev {
			moved = true
		}
	}
	if !moved {
		t.Error("random waypoint never moved")
	}
}

func TestRandomWaypointSpeedBound(t *testing.T) {
	area := geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	m := NewRandomWaypoint(area, 2, 0)
	u := New(1, geom.V2(500, 500))
	u.Mobility = m
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		prev := u.Pos
		u.Step(1, rng)
		if d := u.Pos.Dist(prev); d > 2+1e-9 {
			t.Fatalf("moved %v m in 1 s at 2 m/s", d)
		}
	}
}

func TestRandomWaypointPause(t *testing.T) {
	area := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	m := NewRandomWaypoint(area, 100, 1000) // fast walk, long pause
	u := New(1, geom.V2(5, 5))
	u.Mobility = m
	rng := rand.New(rand.NewSource(4))
	u.Step(1, rng) // reaches first target, starts pausing
	p := u.Pos
	u.Step(10, rng) // still pausing
	if u.Pos != p {
		t.Error("UE moved during pause")
	}
}

func TestPlaceRandomOpen(t *testing.T) {
	area := geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	// Only the western half is open.
	isOpen := func(p geom.Vec2) bool { return p.X < 50 }
	rng := rand.New(rand.NewSource(5))
	ues := PlaceRandomOpen(10, area, isOpen, 5, rng)
	if len(ues) != 10 {
		t.Fatalf("placed %d", len(ues))
	}
	for i, u := range ues {
		if u.Pos.X >= 50 {
			t.Errorf("UE %d on closed ground: %v", i, u.Pos)
		}
		if u.ID != i {
			t.Errorf("UE %d has ID %d", i, u.ID)
		}
		for j := 0; j < i; j++ {
			if u.Pos.Dist(ues[j].Pos) < 5 {
				t.Errorf("UEs %d and %d closer than minSep", i, j)
			}
		}
	}
}

func TestPlaceRandomOpenPanicsWhenImpossible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unplaceable scenario")
		}
	}()
	area := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	PlaceRandomOpen(1, area, func(geom.Vec2) bool { return false }, 0, rand.New(rand.NewSource(1)))
}

func TestPlaceClustered(t *testing.T) {
	area := geom.Rect{MinX: 0, MinY: 0, MaxX: 300, MaxY: 300}
	rng := rand.New(rand.NewSource(6))
	center := geom.V2(150, 150)
	ues := PlaceClustered(8, center, 20, area, func(geom.Vec2) bool { return true }, rng)
	if len(ues) != 8 {
		t.Fatalf("placed %d", len(ues))
	}
	var meanDist float64
	for _, u := range ues {
		meanDist += u.Pos.Dist(center)
	}
	meanDist /= 8
	// Mean distance of a 2-D Gaussian with σ=20 is ~25; allow slack.
	if meanDist > 60 || math.IsNaN(meanDist) {
		t.Errorf("cluster spread %v too large", meanDist)
	}
}
