// Package ue models the ground user equipment: identity, position and
// mobility. The paper evaluates static UEs on the testbed (§4.2),
// scripted routes "closely mimicking human mobility" for the epoch
// study (Fig 12), and random per-epoch repositioning for the scale-up
// study (§5.2).
package ue

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// UE is one ground terminal.
type UE struct {
	// ID is a stable identifier (also the SRS root seed in the PHY).
	ID int
	// Pos is the current true ground position.
	Pos geom.Vec2
	// Mobility drives position updates; nil means static.
	Mobility Mobility
}

// New returns a static UE.
func New(id int, pos geom.Vec2) *UE { return &UE{ID: id, Pos: pos} }

// Step advances the UE by dt seconds.
func (u *UE) Step(dt float64, rng *rand.Rand) {
	if u.Mobility != nil {
		u.Pos = u.Mobility.Step(dt, u.Pos, rng)
	}
}

// String implements fmt.Stringer.
func (u *UE) String() string { return fmt.Sprintf("UE%d@%s", u.ID, u.Pos) }

// State is a UE's serializable state: identity, position, and the
// internal cursor of its mobility model (which waypoint a Route is
// walking toward; the current target and pause timer of a
// RandomWaypoint). The mobility model itself is part of the scenario
// configuration and is rebuilt, not serialized.
type State struct {
	ID  int
	Pos geom.Vec2

	RouteNext int

	RWTarget    geom.Vec2
	RWHasTarget bool
	RWPausing   float64
}

// Snapshot captures the UE's state.
func (u *UE) Snapshot() State {
	st := State{ID: u.ID, Pos: u.Pos}
	switch m := u.Mobility.(type) {
	case *Route:
		st.RouteNext = m.next
	case *RandomWaypoint:
		st.RWTarget = m.target
		st.RWHasTarget = m.hasTarget
		st.RWPausing = m.pausing
	}
	return st
}

// Restore reinstates a snapshot into a UE with the same identity and
// mobility model.
func (u *UE) Restore(st State) error {
	if st.ID != u.ID {
		return fmt.Errorf("ue: restoring state for UE %d into UE %d", st.ID, u.ID)
	}
	u.Pos = st.Pos
	switch m := u.Mobility.(type) {
	case *Route:
		if st.RouteNext < 0 || st.RouteNext > len(m.Waypoints) {
			return fmt.Errorf("ue: UE %d route cursor %d out of range", u.ID, st.RouteNext)
		}
		m.next = st.RouteNext
	case *RandomWaypoint:
		m.target = st.RWTarget
		m.hasTarget = st.RWHasTarget
		m.pausing = st.RWPausing
	}
	return nil
}

// Mobility advances a position by dt seconds.
type Mobility interface {
	Step(dt float64, cur geom.Vec2, rng *rand.Rand) geom.Vec2
}

// Static never moves. The zero value is ready to use.
type Static struct{}

// Step implements Mobility.
func (Static) Step(_ float64, cur geom.Vec2, _ *rand.Rand) geom.Vec2 { return cur }

// Route walks a scripted waypoint list at pedestrian speed, the
// "predefined routes (scripted to closely mimic human mobility)" of
// Fig 12. When Loop is set the route repeats; otherwise the UE stops
// at the final waypoint.
type Route struct {
	Waypoints []geom.Vec2
	SpeedMS   float64
	Loop      bool

	next int
}

// NewRoute returns a route mobility at the given walking speed
// (default 1.4 m/s if speed <= 0).
func NewRoute(waypoints []geom.Vec2, speedMS float64, loop bool) *Route {
	if speedMS <= 0 {
		speedMS = 1.4
	}
	return &Route{Waypoints: waypoints, SpeedMS: speedMS, Loop: loop}
}

// Step implements Mobility.
func (r *Route) Step(dt float64, cur geom.Vec2, _ *rand.Rand) geom.Vec2 {
	remaining := r.SpeedMS * dt
	for remaining > 1e-12 && r.next < len(r.Waypoints) {
		target := r.Waypoints[r.next]
		d := cur.Dist(target)
		if d <= remaining {
			cur = target
			remaining -= d
			r.next++
			if r.next >= len(r.Waypoints) && r.Loop {
				r.next = 0
			}
		} else {
			cur = cur.Add(target.Sub(cur).Unit().Scale(remaining))
			remaining = 0
		}
	}
	return cur
}

// RandomWaypoint implements the classic random-waypoint model within
// an area: pick a uniform destination, walk to it at SpeedMS, pause,
// repeat.
type RandomWaypoint struct {
	Area    geom.Rect
	SpeedMS float64
	PauseS  float64

	target    geom.Vec2
	hasTarget bool
	pausing   float64
}

// NewRandomWaypoint returns the model with sane defaults (1.4 m/s, 5 s
// pause) applied to non-positive parameters.
func NewRandomWaypoint(area geom.Rect, speedMS, pauseS float64) *RandomWaypoint {
	if speedMS <= 0 {
		speedMS = 1.4
	}
	if pauseS < 0 {
		pauseS = 0
	}
	return &RandomWaypoint{Area: area, SpeedMS: speedMS, PauseS: pauseS}
}

// Step implements Mobility.
func (m *RandomWaypoint) Step(dt float64, cur geom.Vec2, rng *rand.Rand) geom.Vec2 {
	remaining := dt
	for remaining > 1e-12 {
		if m.pausing > 0 {
			p := math.Min(m.pausing, remaining)
			m.pausing -= p
			remaining -= p
			continue
		}
		if !m.hasTarget {
			m.target = geom.V2(
				m.Area.MinX+rng.Float64()*m.Area.Width(),
				m.Area.MinY+rng.Float64()*m.Area.Height(),
			)
			m.hasTarget = true
		}
		d := cur.Dist(m.target)
		canMove := m.SpeedMS * remaining
		if d <= canMove {
			cur = m.target
			if m.SpeedMS > 0 {
				remaining -= d / m.SpeedMS
			} else {
				remaining = 0
			}
			m.hasTarget = false
			m.pausing = m.PauseS
		} else {
			cur = cur.Add(m.target.Sub(cur).Unit().Scale(canMove))
			remaining = 0
		}
	}
	return cur
}

// PlaceRandomOpen places n UEs uniformly at random on open terrain
// cells (UEs cannot stand inside buildings), at least minSep apart.
// isOpen reports whether a point is standable. It panics only if the
// area is so constrained that no placement exists after many tries —
// a scenario-configuration error.
func PlaceRandomOpen(n int, area geom.Rect, isOpen func(geom.Vec2) bool, minSep float64, rng *rand.Rand) []*UE {
	ues := make([]*UE, 0, n)
	positions := make([]geom.Vec2, 0, n)
	for id := 0; id < n; id++ {
		placed := false
		for try := 0; try < 10000; try++ {
			p := geom.V2(area.MinX+rng.Float64()*area.Width(), area.MinY+rng.Float64()*area.Height())
			if !isOpen(p) {
				continue
			}
			ok := true
			for _, q := range positions {
				if p.Dist(q) < minSep {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			ues = append(ues, New(id, p))
			positions = append(positions, p)
			placed = true
			break
		}
		if !placed {
			panic(fmt.Sprintf("ue: cannot place UE %d: area too constrained", id))
		}
	}
	return ues
}

// PlaceClustered places n UEs in a Gaussian cluster around center with
// the given spread, on open cells — the paper's Topology B (§4.5.2).
func PlaceClustered(n int, center geom.Vec2, spreadM float64, area geom.Rect, isOpen func(geom.Vec2) bool, rng *rand.Rand) []*UE {
	ues := make([]*UE, 0, n)
	for id := 0; id < n; id++ {
		placed := false
		for try := 0; try < 10000; try++ {
			p := area.Clamp(geom.V2(
				center.X+rng.NormFloat64()*spreadM,
				center.Y+rng.NormFloat64()*spreadM,
			))
			if !isOpen(p) {
				continue
			}
			ues = append(ues, New(id, p))
			placed = true
			break
		}
		if !placed {
			panic(fmt.Sprintf("ue: cannot place clustered UE %d", id))
		}
	}
	return ues
}
