package ue

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/terrain"
)

func TestStreetWalkStaysOnStreets(t *testing.T) {
	tr := terrain.NYC(1)
	sw := NewStreetWalk(tr.Bounds(), tr.IsOpen, 1.4)
	u := New(0, geom.V2(9, 9)) // a street intersection
	u.Mobility = sw
	rng := rand.New(rand.NewSource(1))
	var travelled float64
	prev := u.Pos
	for i := 0; i < 600; i++ {
		u.Step(1, rng)
		if !tr.IsOpen(u.Pos) {
			t.Fatalf("walker entered a building at %v (step %d)", u.Pos, i)
		}
		travelled += u.Pos.Dist(prev)
		prev = u.Pos
	}
	// 600 s at 1.4 m/s should cover most of the nominal distance
	// (turns at blocked corners may stall the odd tick).
	if travelled < 500 {
		t.Errorf("walker covered only %.0f m in 600 s", travelled)
	}
}

func TestStreetWalkSpeedBound(t *testing.T) {
	tr := terrain.NYC(2)
	sw := NewStreetWalk(tr.Bounds(), tr.IsOpen, 2)
	u := New(0, geom.V2(9, 130))
	u.Mobility = sw
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		prev := u.Pos
		u.Step(1, rng)
		if d := u.Pos.Dist(prev); d > 2+1e-9 {
			t.Fatalf("moved %v m in 1 s at 2 m/s", d)
		}
	}
}

func TestStreetWalkTrappedStaysPut(t *testing.T) {
	// No open ground anywhere: the walker must not loop forever or
	// escape.
	sw := NewStreetWalk(geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10},
		func(geom.Vec2) bool { return false }, 1.4)
	u := New(0, geom.V2(5, 5))
	u.Mobility = sw
	rng := rand.New(rand.NewSource(3))
	u.Step(10, rng)
	if u.Pos != geom.V2(5, 5) {
		t.Errorf("trapped walker moved to %v", u.Pos)
	}
}

func TestStreetWalkNilPredicate(t *testing.T) {
	sw := &StreetWalk{Area: geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, SpeedMS: 1}
	u := New(0, geom.V2(5, 5))
	u.Mobility = sw
	u.Step(5, rand.New(rand.NewSource(4)))
	if u.Pos != geom.V2(5, 5) {
		t.Error("nil predicate should freeze the walker, not panic")
	}
}

func TestStreetWalkAxisAligned(t *testing.T) {
	// On a fully open area the walk still moves in cardinal segments.
	area := geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	sw := NewStreetWalk(area, func(geom.Vec2) bool { return true }, 1)
	u := New(0, geom.V2(50, 50))
	u.Mobility = sw
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		prev := u.Pos
		u.Step(1, rng)
		d := u.Pos.Sub(prev)
		if d.X != 0 && d.Y != 0 {
			t.Fatalf("diagonal move %v", d)
		}
	}
}
