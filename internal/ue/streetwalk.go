package ue

import (
	"math/rand"

	"repro/internal/geom"
)

// StreetWalk is a mobility model for gridded urban terrain: the UE
// walks along open corridors (streets), picking a new direction at
// each blocked step or with a small turn probability — pedestrians in
// a Manhattan grid rather than the open-field random waypoint. The
// model only needs an isOpen predicate, so it works on any terrain.
type StreetWalk struct {
	// Area bounds the walk.
	Area geom.Rect
	// IsOpen reports whether a point is walkable.
	IsOpen func(geom.Vec2) bool
	// SpeedMS is walking speed (default 1.4).
	SpeedMS float64
	// TurnProb is the per-step probability of turning at an
	// intersection even when the way ahead is clear (default 0.02 per
	// metre walked).
	TurnProb float64

	dir geom.Vec2
}

// NewStreetWalk returns the model with defaults applied.
func NewStreetWalk(area geom.Rect, isOpen func(geom.Vec2) bool, speedMS float64) *StreetWalk {
	if speedMS <= 0 {
		speedMS = 1.4
	}
	return &StreetWalk{Area: area, IsOpen: isOpen, SpeedMS: speedMS, TurnProb: 0.02}
}

// cardinal directions, axis-aligned like street grids.
var cardinals = [4]geom.Vec2{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}}

// Step implements Mobility.
func (s *StreetWalk) Step(dt float64, cur geom.Vec2, rng *rand.Rand) geom.Vec2 {
	if s.IsOpen == nil {
		return cur
	}
	remaining := s.SpeedMS * dt
	const stride = 1.0 // probe the street one metre at a time
	for remaining > 0 {
		step := stride
		if remaining < stride {
			step = remaining
		}
		if s.dir == (geom.Vec2{}) || rng.Float64() < s.TurnProb*step {
			s.pickDirection(cur, rng)
		}
		next := cur.Add(s.dir.Scale(step))
		if !s.Area.Contains(next) || !s.IsOpen(next) {
			// Blocked: choose a new open direction; if every way is
			// shut, stay put for this tick.
			if !s.pickDirection(cur, rng) {
				return cur
			}
			continue
		}
		cur = next
		remaining -= step
	}
	return cur
}

// pickDirection chooses a random cardinal whose next few metres are
// walkable. It reports whether any direction was viable.
func (s *StreetWalk) pickDirection(cur geom.Vec2, rng *rand.Rand) bool {
	offset := rng.Intn(4)
	for k := 0; k < 4; k++ {
		d := cardinals[(offset+k)%4]
		probe := cur.Add(d.Scale(3))
		if s.Area.Contains(probe) && s.IsOpen(probe) {
			s.dir = d
			return true
		}
	}
	s.dir = geom.Vec2{}
	return false
}
