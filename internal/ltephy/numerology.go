// Package ltephy models the slice of the LTE physical layer SkyRAN
// depends on: uplink Sounding Reference Signals (SRS) built from
// Zadoff-Chu sequences, a frequency-domain channel simulator, the
// paper's upsampled-correlation time-of-flight estimator (eq. 1-3 of
// §3.2.2), and the SNR→CQI→throughput mapping used to score UAV
// positions.
package ltephy

import "math"

// Numerology fixes the OFDM parameters of the carrier. The paper runs
// a 10 MHz LTE carrier sampled at 15.36 MS/s with 1024-point FFTs.
type Numerology struct {
	// BandwidthHz is the channel bandwidth (10 MHz).
	BandwidthHz float64
	// SampleRateHz is the baseband sample rate (15.36 MS/s for 10 MHz).
	SampleRateHz float64
	// FFTSize is the OFDM FFT length (1024 for 10 MHz).
	FFTSize int
	// PRBs is the number of physical resource blocks (50 for 10 MHz).
	PRBs int
	// SRSPeriodMs is the SRS reporting period (10 ms → 100 Hz, §3.2.1).
	SRSPeriodMs float64
}

// LTE10MHz is the paper's configuration.
func LTE10MHz() Numerology {
	return Numerology{
		BandwidthHz:  10e6,
		SampleRateHz: 15.36e6,
		FFTSize:      1024,
		PRBs:         50,
		SRSPeriodMs:  10,
	}
}

// SpeedOfLight in m/s.
const SpeedOfLight = 299792458.0

// SampleDistanceM returns the distance light travels in one baseband
// sample period: c / fs. For 15.36 MS/s this is ~19.5 m, the paper's
// quoted per-sample ranging resolution.
func (n Numerology) SampleDistanceM() float64 {
	return SpeedOfLight / n.SampleRateHz
}

// SamplesPerMetre returns 1/SampleDistanceM.
func (n Numerology) SamplesPerMetre() float64 { return n.SampleRateHz / SpeedOfLight }

// SRSRateHz returns SRS reports per second (100 Hz in the paper).
func (n Numerology) SRSRateHz() float64 { return 1000 / n.SRSPeriodMs }

// resource accounting ------------------------------------------------

const (
	subcarriersPerPRB = 12
	symbolsPerMs      = 14
	// controlOverhead is the fraction of resource elements consumed by
	// reference signals, PDCCH and broadcast channels.
	controlOverhead = 0.25
)

// UsableREsPerSecond returns the downlink resource elements per second
// available for user data after control overhead.
func (n Numerology) UsableREsPerSecond() float64 {
	return float64(n.PRBs) * subcarriersPerPRB * symbolsPerMs * 1000 * (1 - controlOverhead)
}

// PeakThroughputBps returns the throughput at the highest CQI: the
// ~35 Mbps ceiling of a 10 MHz SISO carrier.
func (n Numerology) PeakThroughputBps() float64 {
	return n.UsableREsPerSecond() * cqiTable[len(cqiTable)-1].efficiency
}

// ThroughputBps maps a wideband SNR (dB) to full-buffer single-user
// throughput in bits/s via the CQI table. SNR below the lowest CQI
// threshold yields zero (outage).
func (n Numerology) ThroughputBps(snrDB float64) float64 {
	return n.UsableREsPerSecond() * EfficiencyForSNR(snrDB)
}

// cqiEntry pairs the minimum SNR at which a CQI is decodable with its
// spectral efficiency in bits per resource element (3GPP TS 36.213
// Table 7.2.3-1 efficiencies, thresholds from standard BLER curves).
type cqiEntry struct {
	minSNRdB   float64
	efficiency float64
}

var cqiTable = []cqiEntry{
	{-6.7, 0.1523}, // CQI 1, QPSK 78/1024
	{-4.7, 0.2344},
	{-2.3, 0.3770},
	{0.2, 0.6016},
	{2.4, 0.8770},
	{4.3, 1.1758},
	{5.9, 1.4766}, // 16QAM from here
	{8.1, 1.9141},
	{10.3, 2.4063},
	{11.7, 2.7305}, // 64QAM from here
	{14.1, 3.3223},
	{16.3, 3.9023},
	{18.7, 4.5234},
	{21.0, 5.1152},
	{22.7, 5.5547}, // CQI 15
}

// CQIForSNR returns the highest CQI index (1-15) decodable at the given
// SNR, or 0 for outage.
func CQIForSNR(snrDB float64) int {
	cqi := 0
	for i, e := range cqiTable {
		if snrDB >= e.minSNRdB {
			cqi = i + 1
		}
	}
	return cqi
}

// EfficiencyForSNR returns spectral efficiency in bits per resource
// element for the given SNR (0 in outage).
func EfficiencyForSNR(snrDB float64) float64 {
	cqi := CQIForSNR(snrDB)
	if cqi == 0 {
		return 0
	}
	return cqiTable[cqi-1].efficiency
}

// SNRForCQI returns the minimum SNR at which the given CQI (1-15) is
// usable. It returns -Inf for CQI <= 0 and +Inf above 15.
func SNRForCQI(cqi int) float64 {
	switch {
	case cqi <= 0:
		return math.Inf(-1)
	case cqi > len(cqiTable):
		return math.Inf(1)
	default:
		return cqiTable[cqi-1].minSNRdB
	}
}
