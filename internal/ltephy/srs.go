package ltephy

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/dsp"
)

// This file implements the SRS signal chain of §3.2: Zadoff-Chu SRS
// symbol generation, a frequency-domain channel that imposes the true
// propagation delay (plus NLOS excess delay and noise), and the
// upsampled cross-correlation ToF estimator of eq. (1)-(3).

// zcPrime is the Zadoff-Chu sequence length: the largest prime below
// the 1024-bin FFT so the sequence has ideal cyclic autocorrelation.
const zcPrime = 1021

// SRS is a frequency-domain sounding reference symbol, one complex
// value per occupied subcarrier bin of the FFT grid.
type SRS struct {
	Num  Numerology
	Bins []complex128 // length Num.FFTSize, zero on unoccupied bins
	Root int          // Zadoff-Chu root index
}

// NewSRS builds the SRS symbol for the given Zadoff-Chu root (1 <=
// root < zcPrime, coprime requirement satisfied by primality).
func NewSRS(num Numerology, root int) (*SRS, error) {
	if root <= 0 || root >= zcPrime {
		return nil, fmt.Errorf("ltephy: SRS root %d out of range [1, %d)", root, zcPrime)
	}
	bins := make([]complex128, num.FFTSize)
	// ZC sequence mapped onto the central zcPrime subcarriers,
	// wrapping around DC as LTE does.
	for n := 0; n < zcPrime; n++ {
		phase := -math.Pi * float64(root) * float64(n) * float64(n+1) / float64(zcPrime)
		bin := (n - zcPrime/2 + num.FFTSize) % num.FFTSize
		bins[bin] = cmplx.Exp(complex(0, phase))
	}
	return &SRS{Num: num, Bins: bins, Root: root}, nil
}

// Channel describes one realisation of the UE→UAV uplink channel as it
// affects an SRS symbol.
type Channel struct {
	// DistanceM is the true 3-D propagation distance.
	DistanceM float64
	// ProcOffsetM is the constant processing-delay offset expressed in
	// metres; the paper treats it as an unknown solved during
	// multilateration (§3.2.3).
	ProcOffsetM float64
	// SNRdB is the per-subcarrier signal-to-noise ratio at the eNodeB.
	SNRdB float64
	// LOS selects the multipath profile: LOS has a dominant direct tap;
	// NLOS adds strong excess-delay taps that bias ToF late and make it
	// noisier (the paper reports 5 ns LOS vs 25 ns NLOS jitter).
	LOS bool
	// ExcessDelayM scales the NLOS excess path length (default 40 m of
	// extra path spread when zero).
	ExcessDelayM float64
}

// Propagate applies the channel to the SRS and returns the received
// frequency-domain symbol. rng drives noise and multipath fading and
// must be the caller's seeded stream.
func (s *SRS) Propagate(ch Channel, rng *rand.Rand) []complex128 {
	num := s.Num
	delaySamples := (ch.DistanceM + ch.ProcOffsetM) * num.SamplesPerMetre()
	rx := dsp.ApplyDelay(s.Bins, delaySamples)

	// Multipath: direct tap plus reflected taps at positive excess
	// delays with Rayleigh-faded amplitudes.
	type tap struct {
		delayM float64
		amp    float64
	}
	var taps []tap
	if ch.LOS {
		taps = []tap{
			{0, 1},
			{5 + 10*rng.Float64(), 0.15 * rng.Float64()},
		}
	} else {
		spread := ch.ExcessDelayM
		if spread <= 0 {
			spread = 40
		}
		taps = []tap{
			{0, 0.6 + 0.2*rng.Float64()}, // attenuated direct/diffracted path
			{spread * 0.3 * rng.ExpFloat64(), 0.5 * math.Sqrt(rng.ExpFloat64())},
			{spread * rng.ExpFloat64(), 0.35 * math.Sqrt(rng.ExpFloat64())},
		}
	}
	out := make([]complex128, len(rx))
	for _, tp := range taps {
		phase := complex(0, 2*math.Pi*rng.Float64())
		shifted := dsp.ApplyDelay(rx, tp.delayM*num.SamplesPerMetre())
		gain := complex(tp.amp, 0) * cmplx.Exp(phase)
		for i := range out {
			out[i] += shifted[i] * gain
		}
	}

	// AWGN per occupied subcarrier at the requested SNR. Signal power
	// per occupied bin is ~1 (unit-magnitude ZC times tap gains ~1).
	noiseStd := math.Pow(10, -ch.SNRdB/20) / math.Sqrt2
	for i := range out {
		out[i] += complex(rng.NormFloat64()*noiseStd, rng.NormFloat64()*noiseStd)
	}
	return out
}

// EstimateToF recovers the delay of a received SRS symbol using the
// paper's estimator: t = maxpos(ifft(upsample(s ⊙ h*, K)))/K samples
// (eq. 1-3). It returns the estimated one-way distance in metres
// (including any processing offset folded into the channel) and the
// correlation peak magnitude as a quality indicator.
//
// K trades resolution against noise amplification; the paper selects
// K = 4 (≈4.9 m resolution at 15.36 MS/s).
func (s *SRS) EstimateToF(received []complex128, k int) (distanceM float64, peak float64, err error) {
	if len(received) != len(s.Bins) {
		return 0, 0, fmt.Errorf("ltephy: received symbol length %d, want %d", len(received), len(s.Bins))
	}
	if k < 1 {
		return 0, 0, fmt.Errorf("ltephy: upsampling factor %d < 1", k)
	}
	prod := dsp.MulElem(received, dsp.Conj(s.Bins))
	up := dsp.UpsampleSpectrum(prod, k)
	dsp.IFFT(up)
	gi, mag := dsp.MaxAbsIndex(up)
	if gi < 0 {
		return 0, 0, fmt.Errorf("ltephy: empty correlation")
	}
	idx := firstPeak(up, gi)
	// Interpret indices in the upper half as negative delays (the
	// correlation is circular).
	n := len(up)
	if idx > n/2 {
		idx -= n
	}
	delaySamples := float64(idx) / float64(k)
	return delaySamples * s.Num.SampleDistanceM(), mag, nil
}

// firstPeakThreshold is the fraction of the global correlation peak a
// local maximum must reach to be accepted as the direct path.
const firstPeakThreshold = 0.5

// firstPeak returns the index of the earliest local correlation
// maximum whose magnitude reaches firstPeakThreshold of the global
// peak at gi. Under NLOS the strongest tap is often a long reflection;
// the direct (attenuated) path arrives earlier, and taking the global
// maximum would bias every range late. Scanning in delay order from
// slightly negative delays up to the global peak recovers it — the
// standard first-arriving-path rule of ToA receivers.
func firstPeak(up []complex128, gi int) int {
	n := len(up)
	mag2 := func(i int) float64 {
		v := up[((i%n)+n)%n]
		return real(v)*real(v) + imag(v)*imag(v)
	}
	peak := mag2(gi)
	thresh := peak * firstPeakThreshold * firstPeakThreshold // squared domain
	// Delay order: start a little before zero (noise can place the
	// direct path marginally early) and walk towards the global peak.
	giDelay := gi
	if giDelay > n/2 {
		giDelay -= n
	}
	for d := -n / 16; d < giDelay; d++ {
		m := mag2(d)
		if m >= thresh && m >= mag2(d-1) && m >= mag2(d+1) {
			return ((d % n) + n) % n
		}
	}
	return gi
}

// DefaultUpsampling is the paper's K.
const DefaultUpsampling = 4

// RangeOnce simulates one complete SRS exchange: propagate through ch
// and estimate the distance back. It is the building block the ranging
// pipeline calls 100 times per second.
func (s *SRS) RangeOnce(ch Channel, k int, rng *rand.Rand) (float64, error) {
	rx := s.Propagate(ch, rng)
	d, _, err := s.EstimateToF(rx, k)
	return d, err
}
