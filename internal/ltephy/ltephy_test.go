package ltephy

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNumerology(t *testing.T) {
	n := LTE10MHz()
	if got := n.SampleDistanceM(); math.Abs(got-19.52) > 0.02 {
		t.Errorf("sample distance = %v, want ~19.5 (paper §3.2.2)", got)
	}
	if got := n.SRSRateHz(); got != 100 {
		t.Errorf("SRS rate = %v, want 100 Hz", got)
	}
	if p := n.PeakThroughputBps(); p < 30e6 || p > 40e6 {
		t.Errorf("peak throughput = %v, want ~35 Mbps", p)
	}
	if math.Abs(n.SamplesPerMetre()*n.SampleDistanceM()-1) > 1e-12 {
		t.Error("SamplesPerMetre inconsistent")
	}
}

func TestCQIMapping(t *testing.T) {
	if CQIForSNR(-10) != 0 {
		t.Error("deep outage should be CQI 0")
	}
	if CQIForSNR(-6.7) != 1 {
		t.Error("threshold SNR should reach CQI 1")
	}
	if CQIForSNR(100) != 15 {
		t.Error("high SNR should be CQI 15")
	}
	if EfficiencyForSNR(-20) != 0 {
		t.Error("outage efficiency should be 0")
	}
	if EfficiencyForSNR(25) != 5.5547 {
		t.Errorf("CQI15 efficiency = %v", EfficiencyForSNR(25))
	}
	// Monotone non-decreasing in SNR.
	prev := -1.0
	for snr := -15.0; snr < 30; snr += 0.25 {
		e := EfficiencyForSNR(snr)
		if e < prev {
			t.Fatalf("efficiency decreased at %v dB", snr)
		}
		prev = e
	}
}

func TestSNRForCQI(t *testing.T) {
	if !math.IsInf(SNRForCQI(0), -1) || !math.IsInf(SNRForCQI(16), 1) {
		t.Error("boundary CQIs")
	}
	if SNRForCQI(1) != -6.7 || SNRForCQI(15) != 22.7 {
		t.Error("table endpoints wrong")
	}
	// Round trip: CQIForSNR(SNRForCQI(c)) == c.
	for c := 1; c <= 15; c++ {
		if got := CQIForSNR(SNRForCQI(c)); got != c {
			t.Errorf("round trip CQI %d -> %d", c, got)
		}
	}
}

func TestThroughputMonotoneProperty(t *testing.T) {
	n := LTE10MHz()
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		return n.ThroughputBps(lo) <= n.ThroughputBps(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewSRSValidation(t *testing.T) {
	num := LTE10MHz()
	if _, err := NewSRS(num, 0); err == nil {
		t.Error("root 0 should fail")
	}
	if _, err := NewSRS(num, zcPrime); err == nil {
		t.Error("root = prime should fail")
	}
	s, err := NewSRS(num, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Bins) != num.FFTSize {
		t.Errorf("bins length %d", len(s.Bins))
	}
	// Occupied bins are unit magnitude; count equals zcPrime.
	occupied := 0
	for _, b := range s.Bins {
		if b != 0 {
			occupied++
			if math.Abs(cmplx.Abs(b)-1) > 1e-12 {
				t.Fatal("ZC bin not unit magnitude")
			}
		}
	}
	if occupied != zcPrime {
		t.Errorf("occupied bins = %d, want %d", occupied, zcPrime)
	}
}

func TestEstimateToFNoiseless(t *testing.T) {
	num := LTE10MHz()
	s, _ := NewSRS(num, 25)
	rng := rand.New(rand.NewSource(1))
	// Very high SNR, LOS: estimate should land within one K-th sample.
	for _, d := range []float64{0, 19.52, 100, 487.3, 1000} {
		ch := Channel{DistanceM: d, SNRdB: 60, LOS: true}
		got, err := s.RangeOnce(ch, DefaultUpsampling, rng)
		if err != nil {
			t.Fatal(err)
		}
		res := num.SampleDistanceM() / DefaultUpsampling
		if math.Abs(got-d) > res {
			t.Errorf("distance %v estimated as %v (resolution %v)", d, got, res)
		}
	}
}

func TestEstimateToFOffsetFoldedIn(t *testing.T) {
	num := LTE10MHz()
	s, _ := NewSRS(num, 7)
	rng := rand.New(rand.NewSource(2))
	ch := Channel{DistanceM: 200, ProcOffsetM: 75, SNRdB: 60, LOS: true}
	got, err := s.RangeOnce(ch, DefaultUpsampling, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-275) > num.SampleDistanceM()/DefaultUpsampling {
		t.Errorf("offset not preserved: got %v, want ~275", got)
	}
}

func TestRangingErrorMatchesPaper(t *testing.T) {
	// Fig 17: median ranging error ~4-5 m in realistic conditions with
	// K=4. Run 200 LOS exchanges at moderate SNR and check the median
	// absolute error lands in a sane band (resolution-limited).
	num := LTE10MHz()
	s, _ := NewSRS(num, 25)
	rng := rand.New(rand.NewSource(3))
	var errs []float64
	for i := 0; i < 200; i++ {
		d := 50 + rng.Float64()*250
		ch := Channel{DistanceM: d, SNRdB: 12, LOS: true}
		got, err := s.RangeOnce(ch, DefaultUpsampling, rng)
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, math.Abs(got-d))
	}
	sort.Float64s(errs)
	med := errs[len(errs)/2]
	if med > 6 {
		t.Errorf("median LOS ranging error %.2f m, want <= 6 (paper: 4-5 m)", med)
	}
}

func TestNLOSRangingNoisierAndLate(t *testing.T) {
	num := LTE10MHz()
	s, _ := NewSRS(num, 25)
	rng := rand.New(rand.NewSource(4))
	trials := 150
	bias := func(los bool) (mean, std float64) {
		var raw []float64
		for i := 0; i < trials; i++ {
			d := 100 + rng.Float64()*100
			got, err := s.RangeOnce(Channel{DistanceM: d, SNRdB: 10, LOS: los}, DefaultUpsampling, rng)
			if err != nil {
				t.Fatal(err)
			}
			raw = append(raw, got-d)
		}
		for _, e := range raw {
			mean += e
		}
		mean /= float64(trials)
		for _, e := range raw {
			std += (e - mean) * (e - mean)
		}
		std = math.Sqrt(std / float64(trials))
		return
	}
	losMean, losStd := bias(true)
	nlosMean, nlosStd := bias(false)
	if nlosStd <= losStd {
		t.Errorf("NLOS std %.2f not noisier than LOS %.2f", nlosStd, losStd)
	}
	if nlosMean <= losMean-1 {
		t.Errorf("NLOS bias %.2f should trend late vs LOS %.2f", nlosMean, losMean)
	}
}

func TestEstimateToFErrors(t *testing.T) {
	num := LTE10MHz()
	s, _ := NewSRS(num, 25)
	if _, _, err := s.EstimateToF(make([]complex128, 7), 4); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, _, err := s.EstimateToF(make([]complex128, num.FFTSize), 0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestEstimateToFNegativeDelayWraps(t *testing.T) {
	// A symbol arriving "early" (negative offset) must decode as a
	// negative distance rather than a huge positive one.
	num := LTE10MHz()
	s, _ := NewSRS(num, 25)
	rng := rand.New(rand.NewSource(5))
	ch := Channel{DistanceM: -50, SNRdB: 60, LOS: true}
	got, err := s.RangeOnce(ch, DefaultUpsampling, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-(-50)) > num.SampleDistanceM()/DefaultUpsampling {
		t.Errorf("negative delay decoded as %v, want ~-50", got)
	}
}

func TestUpsamplingImprovesResolution(t *testing.T) {
	// K=4 should bring quantization error below one full sample; K=1
	// should show errors up to ~half a sample distance.
	num := LTE10MHz()
	s, _ := NewSRS(num, 25)
	rng := rand.New(rand.NewSource(6))
	maxErrAt := func(k int) float64 {
		var worst float64
		for i := 0; i < 60; i++ {
			d := rng.Float64() * 300
			got, err := s.RangeOnce(Channel{DistanceM: d, SNRdB: 60, LOS: true}, k, rng)
			if err != nil {
				t.Fatal(err)
			}
			if e := math.Abs(got - d); e > worst {
				worst = e
			}
		}
		return worst
	}
	e1 := maxErrAt(1)
	e4 := maxErrAt(4)
	if e4 >= e1 {
		t.Errorf("K=4 worst error %.2f not better than K=1 %.2f", e4, e1)
	}
	if e4 > num.SampleDistanceM()/2 {
		t.Errorf("K=4 worst error %.2f m too large", e4)
	}
}

func BenchmarkRangeOnce(b *testing.B) {
	num := LTE10MHz()
	s, _ := NewSRS(num, 25)
	rng := rand.New(rand.NewSource(1))
	ch := Channel{DistanceM: 150, SNRdB: 15, LOS: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.RangeOnce(ch, DefaultUpsampling, rng); err != nil {
			b.Fatal(err)
		}
	}
}
