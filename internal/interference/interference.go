// Package interference models the downlink co-channel interference of
// a multi-UAV fleet sharing one LTE carrier. The single-UAV SkyRAN of
// the paper never needs it — one cell, one carrier — but the ROADMAP's
// fleet regime does: once several airborne eNodeBs transmit on the
// same 10 MHz, each UE's channel is set by its serving cell's signal
// against the sum of the other cells' power landing on the same PRBs.
//
// The package is deliberately small and pure: an interference Graph is
// a carrier Plan, a propagation model and a list of cell positions,
// and every query (per-RB SINR, wideband SINR, scheduling penalty) is
// a deterministic function of its arguments. Pathloss evaluations go
// through radio.Model and therefore share the process-wide sharded
// obstruction cache — the interferer rays are memoized exactly like
// serving rays.
//
// Backward compatibility is structural, not numeric: with the
// "separate" plan, a single cell, or an empty interferer overlap, the
// interference power term is exactly zero and every SINR degenerates
// to the bitwise-identical legacy SNR (no log/exp round trip is
// applied). SINR can therefore never exceed SNR, and equals it exactly
// when the interferer set is empty — properties the tests pin.
package interference

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/radio"
)

// Plan names a fleet carrier plan: how the cells share spectrum.
type Plan string

const (
	// PlanSeparate gives every cell its own carrier — the legacy fleet
	// assumption. No cell interferes with any other; all SINRs equal
	// the plain SNR bit for bit.
	PlanSeparate Plan = "separate"
	// PlanCochannel puts every cell on one shared carrier (frequency
	// reuse 1): each UE's downlink competes with every other cell's
	// transmissions on the overlapping PRBs.
	PlanCochannel Plan = "cochannel"
)

// ParsePlan validates a carrier-plan name. The empty string selects
// the co-channel plan (the interesting fleet regime, and the only one
// in which the interference graph has edges).
func ParsePlan(s string) (Plan, error) {
	switch Plan(s) {
	case "":
		return PlanCochannel, nil
	case PlanSeparate, PlanCochannel:
		return Plan(s), nil
	}
	return "", fmt.Errorf("interference: unknown carrier plan %q (valid: %s, %s)", s, PlanSeparate, PlanCochannel)
}

// PRBInterval is a contiguous PRB allocation [Start, Start+N). The
// eNodeB scheduler fills the band from PRB 0, so an interval plus each
// cell's occupied-PRB count is enough to compute RB overlaps.
type PRBInterval struct {
	Start int
	N     int
}

// Graph is the interference graph of a fleet: the carrier plan, the
// shared propagation model, and each cell's transmit position. Under
// PlanCochannel the graph is complete (every cell interferes with
// every other); under PlanSeparate it has no edges. Cell positions may
// be updated between epochs with SetCell; queries are safe for
// concurrent use as long as positions are not being mutated.
type Graph struct {
	Plan  Plan
	Model *radio.Model
	Cells []geom.Vec3
}

// NewGraph builds an interference graph over the given cells.
func NewGraph(plan Plan, m *radio.Model, cells []geom.Vec3) *Graph {
	return &Graph{Plan: plan, Model: m, Cells: append([]geom.Vec3(nil), cells...)}
}

// SetCell moves cell i.
func (g *Graph) SetCell(i int, pos geom.Vec3) { g.Cells[i] = pos }

// Interferers returns the cells that interfere with the serving cell's
// downlink, in ascending index order: every other cell under
// PlanCochannel, none under PlanSeparate.
func (g *Graph) Interferers(serving int) []int {
	if g.Plan != PlanCochannel || len(g.Cells) < 2 {
		return nil
	}
	out := make([]int, 0, len(g.Cells)-1)
	for j := range g.Cells {
		if j != serving {
			out = append(out, j)
		}
	}
	return out
}

// rxPowerDBm is the received power at a ground UE from cell j — the
// same link-budget arithmetic SNRFromPathloss applies, minus the noise
// normalization.
func (g *Graph) rxPowerDBm(j int, ue geom.Vec2) float64 {
	b := g.Model.Budget
	return b.TxPowerDBm + b.TxAntennaGainDB + b.RxAntennaGainDB - g.Model.Pathloss(g.Cells[j], g.Model.UEPoint(ue))
}

// SNRdB is the plain (interference-free) downlink SNR from the serving
// cell to a UE at ue — exactly the legacy radio.Model.SNR call, bit
// for bit.
func (g *Graph) SNRdB(serving int, ue geom.Vec2) float64 {
	return g.Model.SNR(g.Cells[serving], ue)
}

// overlapPRBs returns how many PRBs of alloc fall inside [0, occ) —
// the PRBs on which a cell that scheduled occ PRBs (filled from 0)
// collides with the allocation.
func overlapPRBs(alloc PRBInterval, occ int) int {
	hi := alloc.Start + alloc.N
	if occ < hi {
		hi = occ
	}
	if n := hi - alloc.Start; n > 0 {
		return n
	}
	return 0
}

// interferenceMW sums the interfering cells' received power (mW) at
// ue, weighted by the fraction of the allocation each collides with.
// occ[j] is cell j's occupied-PRB count this TTI; a nil occ treats
// every interferer as fully loaded (all PRBs occupied). The sum is
// accumulated in ascending cell order, so it is deterministic.
func (g *Graph) interferenceMW(serving int, ue geom.Vec2, alloc PRBInterval, occ []int) float64 {
	if g.Plan != PlanCochannel || len(g.Cells) < 2 || alloc.N <= 0 {
		return 0
	}
	var imw float64
	for j := range g.Cells {
		if j == serving {
			continue
		}
		frac := 1.0
		if occ != nil {
			ov := overlapPRBs(alloc, occ[j])
			if ov == 0 {
				continue
			}
			frac = float64(ov) / float64(alloc.N)
		}
		imw += frac * radio.DBmToMilliwatt(g.rxPowerDBm(j, ue))
	}
	return imw
}

// PenaltyDB returns the SINR degradation of the allocation in dB:
// 10·log10(1 + I/N) where I is the RB-overlap-weighted interference
// power and N the thermal noise power. It is exactly 0 — not merely
// small — when the interferer set is empty (separate carriers, a
// single cell, or no PRB overlap), which is what keeps single-cell and
// separate-carrier serving byte-identical to the legacy SNR path.
func (g *Graph) PenaltyDB(serving int, ue geom.Vec2, alloc PRBInterval, occ []int) float64 {
	imw := g.interferenceMW(serving, ue, alloc, occ)
	if imw == 0 {
		return 0
	}
	nmw := radio.DBmToMilliwatt(g.Model.Budget.NoiseFloorDBm())
	return 10 * math.Log10(1+imw/nmw)
}

// SINRdB is the RB-granular downlink SINR of an allocation: the
// serving-cell SNR minus the interference penalty. With an empty
// interferer set it returns the serving SNR unchanged (bitwise), and
// it can never exceed it — the penalty is non-negative.
func (g *Graph) SINRdB(serving int, ue geom.Vec2, alloc PRBInterval, occ []int) float64 {
	p := g.PenaltyDB(serving, ue, alloc, occ)
	if p == 0 {
		return g.SNRdB(serving, ue)
	}
	return g.SNRdB(serving, ue) - p
}

// WidebandSINRdB is the whole-band SINR a UE would report against the
// serving cell with each interferer weighted by its band occupancy
// (occ[j]/prbs used as an activity factor; nil occ = fully loaded).
// Handover measurements and placement scoring use it: it needs no
// allocation, only the load picture.
func (g *Graph) WidebandSINRdB(serving int, ue geom.Vec2, occ []int, prbs int) float64 {
	if g.Plan != PlanCochannel || len(g.Cells) < 2 {
		return g.SNRdB(serving, ue)
	}
	var imw float64
	for j := range g.Cells {
		if j == serving {
			continue
		}
		frac := 1.0
		if occ != nil && prbs > 0 {
			if occ[j] <= 0 {
				continue
			}
			frac = float64(occ[j]) / float64(prbs)
		}
		imw += frac * radio.DBmToMilliwatt(g.rxPowerDBm(j, ue))
	}
	if imw == 0 {
		return g.SNRdB(serving, ue)
	}
	nmw := radio.DBmToMilliwatt(g.Model.Budget.NoiseFloorDBm())
	return g.SNRdB(serving, ue) - 10*math.Log10(1+imw/nmw)
}

// BestCell returns the cell with the highest load-biased wideband SINR
// towards ue: score(j) = WidebandSINR(j) − loadBiasDB·load[j]. Ties
// break to the lowest index. It is the load-aware cell-selection rule
// shared by initial association and idle reselection.
func (g *Graph) BestCell(ue geom.Vec2, load []int, loadBiasDB float64) int {
	best, bestScore := 0, math.Inf(-1)
	for j := range g.Cells {
		score := g.WidebandSINRdB(j, ue, nil, 0)
		if load != nil {
			score -= loadBiasDB * float64(load[j])
		}
		if score > bestScore {
			best, bestScore = j, score
		}
	}
	return best
}
