package interference

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/radio"
	"repro/internal/terrain"
)

func testGraph(t *testing.T, plan Plan, n int) *Graph {
	t.Helper()
	surf := terrain.ByName("FLAT", 1)
	if surf == nil {
		t.Fatal("no FLAT terrain")
	}
	m := radio.NewModel(surf, radio.DefaultParams(), 1)
	b := surf.Bounds()
	cells := make([]geom.Vec3, n)
	for i := range cells {
		fr := (float64(i) + 0.5) / float64(n)
		cells[i] = geom.V2(b.MinX+fr*b.Width(), b.Center().Y).WithZ(60)
	}
	return NewGraph(plan, m, cells)
}

func TestParsePlan(t *testing.T) {
	for in, want := range map[string]Plan{"": PlanCochannel, "separate": PlanSeparate, "cochannel": PlanCochannel} {
		got, err := ParsePlan(in)
		if err != nil || got != want {
			t.Errorf("ParsePlan(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePlan("tdd"); err == nil {
		t.Error("unknown plan should fail")
	}
}

func TestInterferers(t *testing.T) {
	g := testGraph(t, PlanCochannel, 3)
	if got := g.Interferers(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Interferers(1) = %v", got)
	}
	g.Plan = PlanSeparate
	if got := g.Interferers(1); got != nil {
		t.Errorf("separate plan should have no interferers, got %v", got)
	}
}

// SINR must never exceed the plain SNR, and must equal it bitwise when
// the interferer set is empty — the backward-compat contract the whole
// multicell subsystem leans on.
func TestSINRNeverExceedsSNRProperty(t *testing.T) {
	g := testGraph(t, PlanCochannel, 3)
	sep := testGraph(t, PlanSeparate, 3)
	b := g.Model.Terrain.Bounds()
	prop := func(fx, fy float64, serving uint8, start, n uint8, o0, o1, o2 uint8) bool {
		ue := geom.V2(
			b.MinX+math.Abs(math.Mod(fx, 1))*b.Width(),
			b.MinY+math.Abs(math.Mod(fy, 1))*b.Height(),
		)
		s := int(serving) % 3
		alloc := PRBInterval{Start: int(start) % 50, N: int(n) % 50}
		occ := []int{int(o0) % 51, int(o1) % 51, int(o2) % 51}
		snr := g.SNRdB(s, ue)
		sinr := g.SINRdB(s, ue, alloc, occ)
		if sinr > snr {
			t.Logf("SINR %.6f > SNR %.6f at %v", sinr, snr, ue)
			return false
		}
		// Separate carriers: empty interferer set, bitwise equality.
		if got := sep.SINRdB(s, ue, alloc, occ); got != sep.SNRdB(s, ue) {
			t.Logf("separate-plan SINR %.17g != SNR %.17g", got, sep.SNRdB(s, ue))
			return false
		}
		// Wideband obeys the same ordering.
		if wb := g.WidebandSINRdB(s, ue, occ, 50); wb > snr {
			t.Logf("wideband SINR %.6f > SNR %.6f", wb, snr)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSINREqualsSNRWithoutOverlap(t *testing.T) {
	g := testGraph(t, PlanCochannel, 2)
	ue := g.Model.Terrain.Bounds().Center()
	// Interferer occupies PRBs [0,10); allocation sits at [10,20): no
	// overlap, so the penalty must be exactly zero.
	alloc := PRBInterval{Start: 10, N: 10}
	if p := g.PenaltyDB(0, ue, alloc, []int{50, 10}); p != 0 {
		t.Fatalf("non-overlapping allocation penalty = %g, want exact 0", p)
	}
	if got, want := g.SINRdB(0, ue, alloc, []int{50, 10}), g.SNRdB(0, ue); got != want {
		t.Fatalf("SINR %v != SNR %v with no overlap", got, want)
	}
	// Full overlap must strictly degrade (cells are co-channel and close
	// enough for the interference to rise above the noise floor).
	if got := g.SINRdB(0, ue, PRBInterval{Start: 0, N: 10}, []int{50, 50}); got >= g.SNRdB(0, ue) {
		t.Fatalf("full-overlap SINR %v did not degrade below SNR %v", got, g.SNRdB(0, ue))
	}
}

func TestOverlapPRBs(t *testing.T) {
	cases := []struct {
		alloc    PRBInterval
		occ, out int
	}{
		{PRBInterval{0, 10}, 0, 0},
		{PRBInterval{0, 10}, 5, 5},
		{PRBInterval{0, 10}, 50, 10},
		{PRBInterval{20, 10}, 20, 0},
		{PRBInterval{20, 10}, 25, 5},
		{PRBInterval{20, 10}, 50, 10},
	}
	for _, c := range cases {
		if got := overlapPRBs(c.alloc, c.occ); got != c.out {
			t.Errorf("overlapPRBs(%+v, %d) = %d, want %d", c.alloc, c.occ, got, c.out)
		}
	}
}

func TestBestCellLoadBias(t *testing.T) {
	g := testGraph(t, PlanCochannel, 2)
	b := g.Model.Terrain.Bounds()
	mid := b.Center()
	// Unloaded, one cell wins on pure SINR (shadowing breaks the
	// geometric tie); enough load on the winner must flip selection.
	win := g.BestCell(mid, nil, 0)
	other := 1 - win
	load := []int{0, 0}
	load[win] = 100
	if got := g.BestCell(mid, load, 0.5); got != other {
		t.Errorf("BestCell with cell %d heavily loaded = %d, want %d", win, got, other)
	}
	// Zero bias ignores load entirely.
	if got := g.BestCell(mid, load, 0); got != win {
		t.Errorf("BestCell with zero bias = %d, want %d", got, win)
	}
}

func TestPlaceMaxMinSINRImprovesAndDeterministic(t *testing.T) {
	build := func() (*Graph, []geom.Vec2) {
		g := testGraph(t, PlanCochannel, 3)
		b := g.Model.Terrain.Bounds()
		// Start all cells stacked at the centre — maximal self-interference.
		for i := range g.Cells {
			g.Cells[i] = b.Center().WithZ(60)
		}
		ues := []geom.Vec2{
			geom.V2(b.MinX+0.2*b.Width(), b.MinY+0.3*b.Height()),
			geom.V2(b.MinX+0.8*b.Width(), b.MinY+0.7*b.Height()),
			geom.V2(b.MinX+0.5*b.Width(), b.MinY+0.9*b.Height()),
			geom.V2(b.MinX+0.1*b.Width(), b.MinY+0.8*b.Height()),
		}
		return g, ues
	}
	g1, ues := build()
	before := g1.MinSINRdB(ues)
	p1, err := PlaceMaxMinSINR(g1, ues, g1.Model.Terrain.Bounds(), 40, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	after := g1.MinSINRdB(ues)
	if after < before {
		t.Fatalf("placement worsened objective: %.2f -> %.2f dB", before, after)
	}
	g8, _ := build()
	p8, err := PlaceMaxMinSINR(g8, ues, g8.Model.Terrain.Bounds(), 40, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i] != p8[i] {
			t.Fatalf("placement differs at cell %d between 1 and 8 workers: %v vs %v", i, p1[i], p8[i])
		}
	}
}
