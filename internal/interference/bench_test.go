package interference

import (
	"fmt"
	"testing"

	"repro/internal/geom"
	"repro/internal/radio"
	"repro/internal/terrain"
)

// BenchmarkSINRLoop measures the per-TTI cost of the SINR inner loop at
// fleet sizes 2/4/8: for every UE, one RB-granular SINR query against
// its serving cell with every other cell loaded. This is the hot path
// the multicell serving loop adds on top of the legacy scheduler, and
// scripts/bench_sinr.sh snapshots it into BENCH_sinr.json.
func BenchmarkSINRLoop(b *testing.B) {
	for _, nCells := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("cells%d", nCells), func(b *testing.B) {
			surf := terrain.ByName("FLAT", 1)
			m := radio.NewModel(surf, radio.DefaultParams(), 1)
			bounds := surf.Bounds()
			cells := make([]geom.Vec3, nCells)
			for i := range cells {
				fr := (float64(i) + 0.5) / float64(nCells)
				cells[i] = geom.V2(bounds.MinX+fr*bounds.Width(), bounds.Center().Y).WithZ(60)
			}
			g := NewGraph(PlanCochannel, m, cells)
			const nUEs = 40
			ues := make([]geom.Vec2, nUEs)
			for i := range ues {
				fx := float64(i%8)/8 + 0.0625
				fy := float64(i/8)/5 + 0.1
				ues[i] = geom.V2(bounds.MinX+fx*bounds.Width(), bounds.MinY+fy*bounds.Height())
			}
			occ := make([]int, nCells)
			for j := range occ {
				occ[j] = 50
			}
			// Warm the obstruction cache so the steady-state TTI cost is
			// what gets measured, as in the serving loop after TTI 0.
			for i, u := range ues {
				g.SINRdB(i%nCells, u, PRBInterval{Start: 0, N: 10}, occ)
			}
			b.ResetTimer()
			var sink float64
			for n := 0; n < b.N; n++ {
				for i, u := range ues {
					sink += g.SINRdB(i%nCells, u, PRBInterval{Start: (i * 5) % 50, N: 10}, occ)
				}
			}
			_ = sink
		})
	}
}
