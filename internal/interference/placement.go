package interference

import (
	"math"

	"repro/internal/engine"
	"repro/internal/geom"
)

// Fleet placement under interference. The paper's §3.4 objective is
// per-cell max-min SNR; with co-channel cells that objective is blind
// to the interference the fleet inflicts on itself — two UAVs parked
// close together maximize their own sectors' SNR while destroying each
// other's cell edge. The fleet objective therefore becomes max-min
// SINR: the worst UE's wideband SINR from its best serving cell, with
// every cell assumed fully loaded (the conservative reuse-1 picture).
//
// PlaceMaxMinSINR improves a placement by greedy coordinate descent
// over that objective. Candidate evaluations fan out over the
// deterministic parallel engine; each evaluation is a pure function of
// (positions, UE positions), so the result is byte-identical at any
// worker count.

// MinSINRdB is the fleet placement objective value: the minimum over
// UEs of the best-cell fully-loaded wideband SINR. With one cell (or
// separate carriers) it degenerates to the paper's max-min SNR
// objective value.
func (g *Graph) MinSINRdB(ues []geom.Vec2) float64 {
	min := math.Inf(1)
	for _, u := range ues {
		best := math.Inf(-1)
		for j := range g.Cells {
			if s := g.WidebandSINRdB(j, u, nil, 0); s > best {
				best = s
			}
		}
		if best < min {
			min = best
		}
	}
	return min
}

// PlaceMaxMinSINR runs rounds of greedy coordinate descent: each cell
// in index order tries staying put and stepping stepM in the four
// cardinal directions (clamped to area, altitude preserved), keeping
// the move that most improves the fleet min-SINR. Strict improvement
// is required and candidates are compared in a fixed order, so the
// outcome is deterministic; candidate scoring fans out over workers.
// It returns the improved positions (the graph is updated in place).
func PlaceMaxMinSINR(g *Graph, ues []geom.Vec2, area geom.Rect, stepM float64, rounds, workers int) ([]geom.Vec3, error) {
	if stepM <= 0 || rounds <= 0 || len(g.Cells) == 0 || len(ues) == 0 {
		return g.Cells, nil
	}
	offsets := []geom.Vec2{{X: 0, Y: 0}, {X: stepM, Y: 0}, {X: -stepM, Y: 0}, {X: 0, Y: stepM}, {X: 0, Y: -stepM}}
	for r := 0; r < rounds; r++ {
		improved := false
		for c := range g.Cells {
			cur := g.Cells[c]
			cands := make([]geom.Vec3, len(offsets))
			for k, off := range offsets {
				p := area.Clamp(geom.V2(cur.X+off.X, cur.Y+off.Y))
				cands[k] = p.WithZ(cur.Z)
			}
			scores, err := engine.ParallelMap(engine.WorkerCount(workers), len(cands), func(k int) (float64, error) {
				trial := *g // shallow copy shares Model/Plan; swap in a scratch cell list
				cells := append([]geom.Vec3(nil), g.Cells...)
				cells[c] = cands[k]
				trial.Cells = cells
				return trial.MinSINRdB(ues), nil
			})
			if err != nil {
				return nil, err
			}
			bestK := 0 // offset 0 is "stay": moves must strictly beat it
			for k := 1; k < len(scores); k++ {
				if scores[k] > scores[bestK] {
					bestK = k
				}
			}
			if bestK != 0 {
				g.Cells[c] = cands[bestK]
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return g.Cells, nil
}
