package traffic

import (
	"fmt"
	"math"
	"math/rand"
)

// Multi-cohort workloads: the UE population splits into named traffic
// classes (ServeGen-style), each with its own arrival process on a
// dedicated stream keyed by (seed, phase, cohort, UE), and each with a
// deterministic rate envelope — diurnal multi-period multipliers plus
// an optional flash-crowd ramp. Envelopes warp the base renewal
// process through the inverse of the cumulative rate function, so the
// instantaneous arrival rate follows the envelope exactly for Poisson
// cohorts and proportionally for the other renewal models, and the
// whole construction stays a pure function of (spec, seed).

// Cohort is one traffic class. Model-specific knobs left zero fall
// back to the enclosing Spec's values (which Normalize has already
// defaulted).
type Cohort struct {
	// Name labels the cohort (required, unique within the spec).
	Name string `json:"name"`
	// Share is the cohort's relative weight of the UE population.
	// Shares need not sum to 1; UEs are apportioned by largest
	// remainder over normalized shares, in UE index order.
	Share float64 `json:"share"`
	// Model selects the cohort's arrival process (any packet model;
	// empty inherits the spec's model).
	Model Model `json:"model,omitempty"`
	// RateBps / PacketBytes / Shape / BurstS / IdleS / FlowKB override
	// the spec-level knobs for this cohort (zero inherits).
	RateBps     float64 `json:"rate_bps,omitempty"`
	PacketBytes int     `json:"packet_bytes,omitempty"`
	Shape       float64 `json:"shape,omitempty"`
	BurstS      float64 `json:"burst_s,omitempty"`
	IdleS       float64 `json:"idle_s,omitempty"`
	FlowKB      float64 `json:"flow_kb,omitempty"`
	// Diurnal is a repeating sequence of (seconds, rate multiplier)
	// periods — the ServeGen-style multi-period envelope. Empty keeps
	// the rate flat.
	Diurnal []Period `json:"diurnal,omitempty"`
	// Flash, when non-nil, superimposes a flash-crowd ramp on the
	// envelope.
	Flash *Flash `json:"flash,omitempty"`
}

// Period is one diurnal envelope step: the offered rate is multiplied
// by Mult for Seconds, then the next period applies (cycling).
type Period struct {
	Seconds float64 `json:"seconds"`
	Mult    float64 `json:"mult"`
}

// Flash is a flash-crowd ramp: the rate multiplier climbs linearly
// from 1 to Peak over RampS starting at AtS, holds for HoldS, and
// decays linearly back to 1 over DecayS.
type Flash struct {
	AtS    float64 `json:"at_s"`
	Peak   float64 `json:"peak"`
	RampS  float64 `json:"ramp_s,omitempty"`
	HoldS  float64 `json:"hold_s,omitempty"`
	DecayS float64 `json:"decay_s,omitempty"`
}

// normalizeCohorts validates the cohort list of an otherwise
// normalized spec and defaults each cohort's inherited knobs.
func normalizeCohorts(s *Spec) error {
	seen := make(map[string]bool, len(s.Cohorts))
	var total float64
	for i := range s.Cohorts {
		c := &s.Cohorts[i]
		if c.Name == "" {
			return fmt.Errorf("traffic: cohort %d has no name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("traffic: duplicate cohort name %q", c.Name)
		}
		seen[c.Name] = true
		if c.Share <= 0 {
			return fmt.Errorf("traffic: cohort %q share %g must be positive", c.Name, c.Share)
		}
		total += c.Share
		if c.Model == "" {
			c.Model = s.Model
		}
		switch c.Model {
		case ModelCBR, ModelPoisson, ModelOnOff, ModelWeb, ModelGamma, ModelWeibull:
		case ModelFullBuffer:
			return fmt.Errorf("traffic: cohort %q: full-buffer is not a per-cohort model", c.Name)
		default:
			return fmt.Errorf("traffic: cohort %q: unknown model %q", c.Name, c.Model)
		}
		if c.RateBps < 0 || c.Shape < 0 || c.BurstS < 0 || c.IdleS < 0 || c.FlowKB < 0 {
			return fmt.Errorf("traffic: cohort %q has a negative knob", c.Name)
		}
		if c.PacketBytes != 0 && (c.PacketBytes < 20 || c.PacketBytes > 65000) {
			return fmt.Errorf("traffic: cohort %q packet size %d outside [20, 65000]", c.Name, c.PacketBytes)
		}
		var cycle float64
		for j, p := range c.Diurnal {
			if p.Seconds <= 0 {
				return fmt.Errorf("traffic: cohort %q diurnal period %d: seconds %g must be positive", c.Name, j, p.Seconds)
			}
			if p.Mult < 0 {
				return fmt.Errorf("traffic: cohort %q diurnal period %d: negative multiplier %g", c.Name, j, p.Mult)
			}
			cycle += p.Seconds * p.Mult
		}
		if len(c.Diurnal) > 0 && cycle == 0 {
			return fmt.Errorf("traffic: cohort %q diurnal envelope is all-zero", c.Name)
		}
		if f := c.Flash; f != nil {
			if f.AtS < 0 || f.RampS < 0 || f.HoldS < 0 || f.DecayS < 0 {
				return fmt.Errorf("traffic: cohort %q flash has a negative duration", c.Name)
			}
			if f.Peak < 1 {
				return fmt.Errorf("traffic: cohort %q flash peak %g must be >= 1", c.Name, f.Peak)
			}
		}
	}
	if total <= 0 {
		return fmt.Errorf("traffic: cohort shares sum to %g", total)
	}
	return nil
}

// subSpec assembles the cohort's effective workload spec on top of the
// (already normalized) parent.
func (c *Cohort) subSpec(parent Spec) Spec {
	sub := parent
	sub.Cohorts = nil
	sub.Model = c.Model
	if c.RateBps > 0 {
		sub.RateBps = c.RateBps
	}
	if c.PacketBytes > 0 {
		sub.PacketBytes = c.PacketBytes
	}
	if c.Shape > 0 {
		sub.Shape = c.Shape
	}
	if c.BurstS > 0 {
		sub.BurstS = c.BurstS
	}
	if c.IdleS > 0 {
		sub.IdleS = c.IdleS
	}
	if c.FlowKB > 0 {
		sub.FlowKB = c.FlowKB
	}
	return sub
}

// ApportionCohorts assigns n UEs (by index) to the spec's cohorts by
// largest-remainder apportionment over normalized shares: cohort k
// receives counts[k] consecutive UE indices, in cohort order. The
// split is a pure function of (shares, n) — ties break toward the
// earlier cohort — so workers, checkpoints and replays all agree on
// who belongs to whom.
func ApportionCohorts(cohorts []Cohort, n int) []int {
	counts := make([]int, len(cohorts))
	if len(cohorts) == 0 || n <= 0 {
		return counts
	}
	var total float64
	for _, c := range cohorts {
		total += c.Share
	}
	rem := make([]float64, len(cohorts))
	assigned := 0
	for i, c := range cohorts {
		exact := c.Share / total * float64(n)
		counts[i] = int(math.Floor(exact))
		rem[i] = exact - math.Floor(exact)
		assigned += counts[i]
	}
	for assigned < n {
		best := 0
		for i := 1; i < len(rem); i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		counts[best]++
		rem[best] = -1
		assigned++
	}
	return counts
}

// CohortOf maps a UE index to its cohort index under the counts from
// ApportionCohorts.
func CohortOf(counts []int, ue int) int {
	for k, c := range counts {
		if ue < c {
			return k
		}
		ue -= c
	}
	return len(counts) - 1
}

// deriveCohortSeed namespaces the phase seed per cohort, so the
// (seed, phase, cohort, UE) streams are mutually independent and a
// cohort's stream identity does not depend on the other cohorts.
func deriveCohortSeed(seed uint64, cohort int) uint64 {
	z := seed ^ (0xa24baed4963ee407 * uint64(cohort+1))
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewSources builds the per-UE arrival processes for one serving
// phase: the single-class path is exactly the pre-cohort per-UE
// NewSource calls (byte-identical streams), while cohort specs
// apportion the population and wrap each cohort's base process in its
// rate envelope. ueIDs are the world's UE identifiers in index order.
// Full-buffer returns all-nil sources.
func NewSources(spec Spec, ueIDs []int, seed uint64, horizon float64) []Source {
	sources := make([]Source, len(ueIDs))
	if spec.Model == ModelFullBuffer {
		return sources
	}
	if len(spec.Cohorts) == 0 {
		for i, id := range ueIDs {
			sources[i] = NewSource(spec, id, seed, horizon)
		}
		return sources
	}
	counts := ApportionCohorts(spec.Cohorts, len(ueIDs))
	for i, id := range ueIDs {
		k := CohortOf(counts, i)
		c := &spec.Cohorts[k]
		env := newEnvelope(c, horizon)
		rng := rand.New(rand.NewSource(deriveSeed(deriveCohortSeed(seed, k), id)))
		base := newSourceRNG(c.subSpec(spec), rng, env.totalWork())
		if env.flat() {
			sources[i] = base
		} else {
			sources[i] = &envelopeSource{base: base, env: env, horizon: horizon}
		}
	}
	return sources
}

// envelope is a piecewise-linear rate multiplier m(t) over [0,
// horizon]: the diurnal steps (piecewise constant) multiplied by the
// flash ramp (piecewise linear). ts are the breakpoints, ms the
// multiplier at each breakpoint, ws the cumulative work W(t) = ∫m.
type envelope struct {
	ts, ms, ws []float64
}

// breakpointsOf merges the diurnal and flash breakpoints over [0, h].
func breakpointsOf(c *Cohort, h float64) []float64 {
	ts := []float64{0, h}
	if len(c.Diurnal) > 0 {
		t := 0.0
		for t < h {
			for _, p := range c.Diurnal {
				t += p.Seconds
				if t >= h {
					break
				}
				ts = append(ts, t)
			}
		}
	}
	if f := c.Flash; f != nil {
		for _, t := range []float64{f.AtS, f.AtS + f.RampS, f.AtS + f.RampS + f.HoldS, f.AtS + f.RampS + f.HoldS + f.DecayS} {
			if t > 0 && t < h {
				ts = append(ts, t)
			}
		}
	}
	sortFloats(ts)
	uniq := ts[:1]
	for _, t := range ts[1:] {
		if t != uniq[len(uniq)-1] {
			uniq = append(uniq, t)
		}
	}
	return uniq
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// diurnalMult evaluates the repeating step envelope at time t.
func diurnalMult(periods []Period, t float64) float64 {
	if len(periods) == 0 {
		return 1
	}
	var cycle float64
	for _, p := range periods {
		cycle += p.Seconds
	}
	t = math.Mod(t, cycle)
	for _, p := range periods {
		if t < p.Seconds {
			return p.Mult
		}
		t -= p.Seconds
	}
	return periods[len(periods)-1].Mult
}

// flashMult evaluates the flash-crowd ramp at time t.
func flashMult(f *Flash, t float64) float64 {
	if f == nil {
		return 1
	}
	switch {
	case t < f.AtS:
		return 1
	case t < f.AtS+f.RampS:
		return 1 + (f.Peak-1)*(t-f.AtS)/f.RampS
	case t < f.AtS+f.RampS+f.HoldS:
		return f.Peak
	case t < f.AtS+f.RampS+f.HoldS+f.DecayS:
		return f.Peak - (f.Peak-1)*(t-f.AtS-f.RampS-f.HoldS)/f.DecayS
	default:
		return 1
	}
}

// newEnvelope tabulates the cohort's m(t) at its breakpoints and the
// cumulative work between them. Within each segment the diurnal factor
// is constant and the flash factor linear, so m is linear and the
// segment's work is the trapezoid area.
func newEnvelope(c *Cohort, horizon float64) *envelope {
	ts := breakpointsOf(c, horizon)
	e := &envelope{ts: ts, ms: make([]float64, len(ts)), ws: make([]float64, len(ts))}
	for i, t := range ts {
		// Evaluate the step envelope just inside the segment start so a
		// breakpoint takes the multiplier of the period it opens.
		e.ms[i] = flashMult(c.Flash, t)
		if len(c.Diurnal) > 0 {
			if i+1 < len(ts) {
				e.ms[i] *= diurnalMult(c.Diurnal, (t+ts[i+1])/2)
			} else {
				e.ms[i] *= diurnalMult(c.Diurnal, t)
			}
		}
	}
	for i := 1; i < len(ts); i++ {
		dt := ts[i] - ts[i-1]
		// The diurnal factor is constant across (ts[i-1], ts[i]); only the
		// flash factor varies linearly. Recompute the segment-end
		// multiplier under the segment's diurnal step.
		mEnd := flashMult(c.Flash, ts[i])
		mStart := flashMult(c.Flash, ts[i-1])
		d := 1.0
		if len(c.Diurnal) > 0 {
			d = diurnalMult(c.Diurnal, (ts[i-1]+ts[i])/2)
		}
		e.ws[i] = e.ws[i-1] + d*(mStart+mEnd)/2*dt
	}
	return e
}

// flat reports whether the envelope is identically 1 (no warp needed).
func (e *envelope) flat() bool {
	return e.totalWork() == e.ts[len(e.ts)-1] && func() bool {
		for _, m := range e.ms {
			if m != 1 {
				return false
			}
		}
		return true
	}()
}

// totalWork is W(horizon) — the base-process horizon.
func (e *envelope) totalWork() float64 { return e.ws[len(e.ts)-1] }

// warp maps base-process time w (cumulative work) to wall-clock time:
// the inverse of W(t). Within a segment W is quadratic in τ (linear
// m), solved in closed form.
func (e *envelope) warp(w float64) float64 {
	n := len(e.ts)
	// Find the segment holding w.
	i := 1
	for i < n-1 && e.ws[i] < w {
		i++
	}
	w0, t0, dt := e.ws[i-1], e.ts[i-1], e.ts[i]-e.ts[i-1]
	if dt <= 0 {
		return t0
	}
	// m(τ) = m0 + slope·τ over the segment; the diurnal step is baked
	// into both endpoints' work so derive m0/m1 from the work identity.
	m0 := e.ms[i-1]
	m1 := 2*(e.ws[i]-w0)/dt - m0
	slope := (m1 - m0) / dt
	rem := w - w0
	if rem <= 0 {
		return t0
	}
	var tau float64
	if math.Abs(slope) < 1e-12 {
		if m0 <= 0 {
			return e.ts[i]
		}
		tau = rem / m0
	} else {
		disc := m0*m0 + 2*slope*rem
		if disc < 0 {
			disc = 0
		}
		tau = (math.Sqrt(disc) - m0) / slope
	}
	if tau < 0 {
		tau = 0
	}
	if tau > dt {
		tau = dt
	}
	return t0 + tau
}

// envelopeSource warps a base renewal process through the envelope's
// inverse cumulative rate: base arrivals at work-time w surface at
// wall-clock warp(w), so arrivals bunch where the multiplier is high.
type envelopeSource struct {
	base    Source
	env     *envelope
	horizon float64
}

func (s *envelopeSource) Next() (float64, int, bool) {
	w, size, ok := s.base.Next()
	if !ok {
		return 0, 0, false
	}
	t := s.env.warp(w)
	if t >= s.horizon {
		return 0, 0, false
	}
	return t, size, true
}
