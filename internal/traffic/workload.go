package traffic

import (
	"fmt"
	"math"
	"math/rand"
)

// Model names a per-UE downlink workload.
type Model string

// The workload catalog.
const (
	// ModelFullBuffer is the pre-traffic-subsystem abstraction: every
	// UE always has data waiting, so the scheduler's grants are the
	// throughput. It generates no packets and reports no delay/loss.
	ModelFullBuffer Model = "full-buffer"
	// ModelCBR emits fixed-size packets at a constant rate (voice-like,
	// each UE phase-shifted so the cell load is smooth).
	ModelCBR Model = "cbr"
	// ModelPoisson emits fixed-size packets with exponential
	// inter-arrival times at the given mean rate.
	ModelPoisson Model = "poisson"
	// ModelOnOff is MMPP-style bursty traffic: exponential ON/OFF
	// periods, Poisson arrivals during ON at a peak rate chosen so the
	// long-run mean equals RateBps.
	ModelOnOff Model = "onoff"
	// ModelWeb is heavy-tailed web/video traffic: flows arrive as a
	// Poisson process, flow sizes are Pareto, and each flow's packets
	// are paced at a server line rate.
	ModelWeb Model = "web"
	// ModelGamma emits fixed-size packets with Gamma(shape, scale)
	// inter-arrival times at the given mean rate. Shape < 1 is burstier
	// than Poisson, shape > 1 smoother; shape 1 degenerates to Poisson.
	ModelGamma Model = "gamma"
	// ModelWeibull emits fixed-size packets with Weibull(shape)
	// inter-arrival times at the given mean rate; shape < 1 gives the
	// heavy-tailed gaps measured in real cellular traces.
	ModelWeibull Model = "weibull"
)

// Traffic modes: where the serving phase's arrivals come from.
const (
	// ModeGenerate (the default; the empty string normalizes to it)
	// draws arrivals from the workload models.
	ModeGenerate = ""
	// ModeReplay reads the arrivals recorded in Spec.TraceFile instead
	// of generating them, reproducing a captured run's per-UE KPI rows
	// byte for byte.
	ModeReplay = "replay"
)

// Spec describes the per-UE offered load — part of the scenario knobs
// and of the skyrand job wire format.
type Spec struct {
	// Model selects the arrival process.
	Model Model `json:"model"`
	// RateBps is the mean offered rate per UE (default 2 Mbit/s).
	RateBps float64 `json:"rate_bps,omitempty"`
	// PacketBytes is the IP packet size (default 1200).
	PacketBytes int `json:"packet_bytes,omitempty"`
	// BurstS / IdleS are the mean ON / OFF durations of the onoff
	// model (defaults 0.2 s / 0.8 s → 5× peak-to-mean burstiness).
	BurstS float64 `json:"burst_s,omitempty"`
	IdleS  float64 `json:"idle_s,omitempty"`
	// FlowKB is the mean flow size of the web model in kilobytes
	// (default 64). ParetoAlpha is the tail index (default 1.5; lower
	// is heavier-tailed, must stay > 1 for a finite mean).
	FlowKB      float64 `json:"flow_kb,omitempty"`
	ParetoAlpha float64 `json:"pareto_alpha,omitempty"`
	// PacingBps is the in-flow packet pacing rate of the web model —
	// the origin server's line rate (default 20 Mbit/s).
	PacingBps float64 `json:"pacing_bps,omitempty"`
	// Shape is the inter-arrival shape parameter k of the gamma and
	// weibull models (default 0.5 — burstier than Poisson).
	Shape float64 `json:"shape,omitempty"`

	// Cohorts, when non-empty, splits the UE population into named
	// traffic classes: each cohort has its own arrival process on a
	// dedicated stream keyed by (seed, phase, cohort, UE), its own rate
	// envelope (diurnal periods, flash-crowd ramp), and a Share of the
	// population. The top-level model fields above then act as defaults
	// a cohort can override. An empty list keeps the single-class
	// behaviour byte-identical to pre-cohort builds.
	Cohorts []Cohort `json:"cohorts,omitempty"`

	// Mode selects where arrivals come from: ModeGenerate draws them
	// from the models, ModeReplay reads them from TraceFile (recorded by
	// a previous run). TraceFile is only meaningful with ModeReplay.
	Mode      string `json:"mode,omitempty"`
	TraceFile string `json:"trace_file,omitempty"`
}

// Normalize fills defaults and validates the spec.
func (s *Spec) Normalize() error {
	if s.Model == "" {
		s.Model = ModelFullBuffer
	}
	switch s.Model {
	case ModelFullBuffer, ModelCBR, ModelPoisson, ModelOnOff, ModelWeb, ModelGamma, ModelWeibull:
	default:
		return fmt.Errorf("traffic: unknown model %q", s.Model)
	}
	if s.Mode == "generate" {
		s.Mode = ModeGenerate // canonical form, so fingerprints agree
	}
	switch s.Mode {
	case ModeGenerate, ModeReplay:
	default:
		return fmt.Errorf("traffic: unknown mode %q (valid: generate, replay)", s.Mode)
	}
	if s.Mode == ModeReplay && s.TraceFile == "" {
		return fmt.Errorf("traffic: mode %q needs a trace_file", ModeReplay)
	}
	if s.Mode != ModeReplay && s.TraceFile != "" {
		return fmt.Errorf("traffic: trace_file is only meaningful with mode %q", ModeReplay)
	}
	if s.RateBps == 0 {
		s.RateBps = 2e6
	}
	if s.RateBps < 0 {
		return fmt.Errorf("traffic: negative rate %g", s.RateBps)
	}
	if s.PacketBytes == 0 {
		s.PacketBytes = 1200
	}
	if s.PacketBytes < 20 || s.PacketBytes > 65000 {
		return fmt.Errorf("traffic: packet size %d outside [20, 65000]", s.PacketBytes)
	}
	if s.BurstS == 0 {
		s.BurstS = 0.2
	}
	if s.IdleS == 0 {
		s.IdleS = 0.8
	}
	if s.BurstS < 0 || s.IdleS < 0 {
		return fmt.Errorf("traffic: negative on/off durations (%g, %g)", s.BurstS, s.IdleS)
	}
	if s.FlowKB == 0 {
		s.FlowKB = 64
	}
	if s.FlowKB < 0 {
		return fmt.Errorf("traffic: negative flow size %g", s.FlowKB)
	}
	if s.ParetoAlpha == 0 {
		s.ParetoAlpha = 1.5
	}
	if s.ParetoAlpha <= 1 {
		return fmt.Errorf("traffic: pareto alpha %g must be > 1 (finite mean)", s.ParetoAlpha)
	}
	if s.PacingBps == 0 {
		s.PacingBps = 20e6
	}
	if s.PacingBps < 0 {
		return fmt.Errorf("traffic: negative pacing rate %g", s.PacingBps)
	}
	if s.Shape == 0 {
		s.Shape = 0.5
	}
	if s.Shape <= 0 {
		return fmt.Errorf("traffic: shape %g must be positive", s.Shape)
	}
	if len(s.Cohorts) > 0 {
		if s.Model == ModelFullBuffer {
			return fmt.Errorf("traffic: cohorts need a packet model (top-level model %q sets the cohort defaults)", ModelFullBuffer)
		}
		if err := normalizeCohorts(s); err != nil {
			return err
		}
	}
	return nil
}

// Source yields one UE's downlink packet arrivals in non-decreasing
// time order. Next returns the arrival time in seconds since the
// serving phase began and the packet size in bytes; ok=false once the
// source has passed its horizon.
type Source interface {
	Next() (t float64, size int, ok bool)
}

// deriveSeed mixes the world seed with a per-UE index (splitmix64
// finalizer) so every UE draws from an independent stream whose
// identity does not depend on how many other UEs exist.
func deriveSeed(seed uint64, ue int) int64 {
	z := seed + 0x9e3779b97f4a7c15*uint64(ue+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// NewSource builds the arrival process for one UE. The horizon bounds
// generation: no arrival at or beyond it is ever produced. Full-buffer
// returns nil (that model has no arrival process). The spec must be
// normalized.
func NewSource(spec Spec, ue int, seed uint64, horizon float64) Source {
	return newSourceRNG(spec, rand.New(rand.NewSource(deriveSeed(seed, ue))), horizon)
}

// newSourceRNG is NewSource with the stream already built — cohort
// sources reuse it with a (seed, phase, cohort, UE)-keyed stream.
func newSourceRNG(spec Spec, rng *rand.Rand, horizon float64) Source {
	switch spec.Model {
	case ModelCBR:
		interval := float64(spec.PacketBytes*8) / spec.RateBps
		return &cbrSource{
			t:        interval * rng.Float64(), // per-UE phase shift
			interval: interval,
			size:     spec.PacketBytes,
			horizon:  horizon,
		}
	case ModelPoisson:
		return &poissonSource{
			rng:     rng,
			meanIAT: float64(spec.PacketBytes*8) / spec.RateBps,
			size:    spec.PacketBytes,
			horizon: horizon,
		}
	case ModelOnOff:
		duty := spec.BurstS / (spec.BurstS + spec.IdleS)
		peak := spec.RateBps / duty
		src := &onOffSource{
			rng:     rng,
			meanIAT: float64(spec.PacketBytes*8) / peak,
			burstS:  spec.BurstS,
			idleS:   spec.IdleS,
			size:    spec.PacketBytes,
			horizon: horizon,
		}
		// Begin in OFF: the first burst starts after one idle draw.
		src.t = rng.ExpFloat64() * spec.IdleS
		src.onEnd = src.t + rng.ExpFloat64()*spec.BurstS
		return src
	case ModelGamma:
		return &gammaSource{
			rng:     rng,
			meanIAT: float64(spec.PacketBytes*8) / spec.RateBps,
			shape:   spec.Shape,
			size:    spec.PacketBytes,
			horizon: horizon,
		}
	case ModelWeibull:
		k := spec.Shape
		return &weibullSource{
			rng:     rng,
			scale:   float64(spec.PacketBytes*8) / spec.RateBps / math.Gamma(1+1/k),
			invK:    1 / k,
			size:    spec.PacketBytes,
			horizon: horizon,
		}
	case ModelWeb:
		meanFlowBytes := spec.FlowKB * 1024
		return &webSource{
			rng:     rng,
			flowIAT: meanFlowBytes * 8 / spec.RateBps,
			xm:      meanFlowBytes * (spec.ParetoAlpha - 1) / spec.ParetoAlpha,
			alpha:   spec.ParetoAlpha,
			pktGap:  float64(spec.PacketBytes*8) / spec.PacingBps,
			size:    spec.PacketBytes,
			horizon: horizon,
		}
	default: // ModelFullBuffer
		return nil
	}
}

// cbrSource: packet every interval seconds.
type cbrSource struct {
	t, interval, horizon float64
	size                 int
}

func (s *cbrSource) Next() (float64, int, bool) {
	if s.t >= s.horizon {
		return 0, 0, false
	}
	t := s.t
	s.t += s.interval
	return t, s.size, true
}

// poissonSource: exponential inter-arrival times.
type poissonSource struct {
	rng        *rand.Rand
	t, meanIAT float64
	horizon    float64
	size       int
}

func (s *poissonSource) Next() (float64, int, bool) {
	s.t += s.rng.ExpFloat64() * s.meanIAT
	if s.t >= s.horizon {
		return 0, 0, false
	}
	return s.t, s.size, true
}

// onOffSource: Poisson arrivals at peak rate during exponential ON
// periods, silence during exponential OFF periods.
type onOffSource struct {
	rng                    *rand.Rand
	t, onEnd               float64
	meanIAT, burstS, idleS float64
	horizon                float64
	size                   int
}

func (s *onOffSource) Next() (float64, int, bool) {
	for {
		iat := s.rng.ExpFloat64() * s.meanIAT
		if s.t+iat < s.onEnd {
			s.t += iat
			if s.t >= s.horizon {
				return 0, 0, false
			}
			return s.t, s.size, true
		}
		// Burst over: jump to the next ON period.
		s.t = s.onEnd + s.rng.ExpFloat64()*s.idleS
		s.onEnd = s.t + s.rng.ExpFloat64()*s.burstS
		if s.t >= s.horizon {
			return 0, 0, false
		}
	}
}

// gammaSource: Gamma(shape, scale) inter-arrival times with mean
// shape·scale = meanIAT.
type gammaSource struct {
	rng            *rand.Rand
	t, meanIAT     float64
	shape, horizon float64
	size           int
}

func (s *gammaSource) Next() (float64, int, bool) {
	s.t += gammaDraw(s.rng, s.shape) * s.meanIAT / s.shape
	if s.t >= s.horizon {
		return 0, 0, false
	}
	return s.t, s.size, true
}

// gammaDraw samples Gamma(k, 1) via Marsaglia–Tsang, with the
// U^(1/k) boost for k < 1. Rejection draws a variable number of stream
// values, but the count is a pure function of the stream, so the
// sequence stays byte-reproducible.
func gammaDraw(rng *rand.Rand, k float64) float64 {
	if k < 1 {
		u := rng.Float64()
		if u < 1e-300 {
			u = 1e-300
		}
		return gammaDraw(rng, k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// weibullSource: Weibull(shape) inter-arrival times, scaled so the
// mean gap is meanIAT (scale = meanIAT / Γ(1 + 1/shape)).
type weibullSource struct {
	rng           *rand.Rand
	t, scale      float64
	invK, horizon float64
	size          int
}

func (s *weibullSource) Next() (float64, int, bool) {
	u := s.rng.Float64()
	if u < 1e-300 {
		u = 1e-300
	}
	s.t += s.scale * math.Pow(-math.Log(u), s.invK)
	if s.t >= s.horizon {
		return 0, 0, false
	}
	return s.t, s.size, true
}

// webSource: Poisson flow arrivals, Pareto flow sizes, packets within
// a flow paced at the origin line rate; overlapping flows queue behind
// each other. Flow sizes are capped at 10^4 × xm so a single tail draw
// cannot swallow the whole horizon.
type webSource struct {
	rng       *rand.Rand
	flowT     float64 // arrival time of the current/last flow
	flowIAT   float64
	xm, alpha float64
	pktGap    float64
	horizon   float64
	size      int
	remBytes  int     // unsent bytes of the current flow
	nextPkt   float64 // emission time of the next packet in the flow
}

func (s *webSource) Next() (float64, int, bool) {
	for {
		if s.remBytes > 0 {
			t := s.nextPkt
			if t >= s.horizon {
				return 0, 0, false
			}
			n := s.size
			if s.remBytes < n {
				n = s.remBytes
			}
			s.remBytes -= n
			s.nextPkt += s.pktGap
			return t, n, true
		}
		s.flowT += s.rng.ExpFloat64() * s.flowIAT
		if s.flowT >= s.horizon {
			return 0, 0, false
		}
		// A flow that arrives while the previous one is still being
		// paced queues behind it (the origin serialises the bearer),
		// keeping the per-UE stream monotone.
		if s.flowT < s.nextPkt {
			s.flowT = s.nextPkt
			if s.flowT >= s.horizon {
				return 0, 0, false
			}
		}
		// Pareto(xm, alpha) via inverse transform, tail-capped.
		u := s.rng.Float64()
		if u < 1e-12 {
			u = 1e-12
		}
		size := s.xm / math.Pow(u, 1/s.alpha)
		if max := s.xm * 1e4; size > max {
			size = max
		}
		s.remBytes = int(size)
		if s.remBytes < 1 {
			s.remBytes = 1
		}
		s.nextPkt = s.flowT
	}
}
