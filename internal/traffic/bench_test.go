package traffic

import (
	"fmt"
	"testing"
)

// BenchmarkTrafficGenerator measures the event-heap merge across a
// large UE population — the hot path of every traffic-driven serving
// phase.
func BenchmarkTrafficGenerator(b *testing.B) {
	for _, ues := range []int{100, 1000} {
		for _, model := range []Model{ModelPoisson, ModelOnOff, ModelWeb} {
			b.Run(fmt.Sprintf("%s/ues=%d", model, ues), func(b *testing.B) {
				spec := Spec{Model: model, RateBps: 1e6}
				if err := spec.Normalize(); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sources := make([]Source, ues)
					for ue := range sources {
						sources[ue] = NewSource(spec, ue, 42, 1.0)
					}
					g := NewGenerator(sources)
					n := 0
					for {
						if _, ok := g.Pop(1.0); !ok {
							break
						}
						n++
					}
					if n == 0 {
						b.Fatal("no arrivals")
					}
				}
			})
		}
	}
}

// BenchmarkTrafficCollector measures KPI accounting throughput.
func BenchmarkTrafficCollector(b *testing.B) {
	ids := make([]int, 100)
	for i := range ids {
		ids[i] = i
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewCollector(ModelPoisson, ids)
		for p := 0; p < 10000; p++ {
			ue := p % len(ids)
			c.Offered(ue, 1200)
			c.Delivered(ue, 1200, float64(p%50)*1e-3)
		}
		if rep := c.Report(10, nil, nil); rep.Summary.DeliveredBytes == 0 {
			b.Fatal("empty report")
		}
	}
}
