package traffic

// Generator merges per-UE sources into one time-ordered packet stream
// via the (time, sequence) event heap: each source keeps exactly one
// pending event in the heap; popping it re-arms the source with its
// next arrival. The merge is a pure function of the sources, so the
// stream is byte-reproducible for a given (spec, seed, UE set).
type Generator struct {
	q       EventQueue[arrival]
	sources []Source
}

// arrival is one packet arrival: which source (UE index) and its size.
type arrival struct {
	src  int
	size int
}

// Arrival is one merged packet arrival handed to the serving loop.
type Arrival struct {
	// UE is the index into the source slice the generator was built
	// with (the world's UE index, not the UE ID).
	UE int
	// T is the arrival time in seconds since the serving phase began.
	T float64
	// Bytes is the IP packet size.
	Bytes int
}

// NewGenerator builds a merged stream over the given sources. Nil
// sources (full-buffer UEs) are skipped.
func NewGenerator(sources []Source) *Generator {
	g := &Generator{sources: sources}
	for i, s := range sources {
		if s == nil {
			continue
		}
		if t, size, ok := s.Next(); ok {
			g.q.Push(t, arrival{src: i, size: size})
		}
	}
	return g
}

// Pending returns the number of sources with a scheduled arrival.
func (g *Generator) Pending() int { return g.q.Len() }

// Pop returns the next arrival strictly before limit, re-arming its
// source; ok=false when no source has an arrival before limit.
func (g *Generator) Pop(limit float64) (Arrival, bool) {
	ev, ok := g.q.Peek()
	if !ok || ev.T >= limit {
		return Arrival{}, false
	}
	g.q.Pop()
	if t, size, ok := g.sources[ev.Payload.src].Next(); ok {
		g.q.Push(t, arrival{src: ev.Payload.src, size: size})
	}
	return Arrival{UE: ev.Payload.src, T: ev.T, Bytes: ev.Payload.size}, true
}
