package traffic

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"
)

func TestGammaWeibullDeterministicAndRateAccurate(t *testing.T) {
	const horizon = 60.0
	for _, model := range []Model{ModelGamma, ModelWeibull} {
		spec := normalized(t, Spec{Model: model, RateBps: 1e6})
		t1, b1 := drain(NewSource(spec, 3, 99, horizon))
		t2, b2 := drain(NewSource(spec, 3, 99, horizon))
		if !reflect.DeepEqual(t1, t2) || b1 != b2 {
			t.Fatalf("%s: same (spec, seed, ue) produced different streams", model)
		}
		rate := float64(b1) * 8 / horizon
		if rate < 0.7e6 || rate > 1.3e6 {
			t.Errorf("%s: offered %.0f bps, want ~1e6", model, rate)
		}
		t3, _ := drain(NewSource(spec, 4, 99, horizon))
		if reflect.DeepEqual(t1, t3) {
			t.Errorf("%s: distinct UEs share a stream", model)
		}
	}
}

func TestGammaShapeControlsBurstiness(t *testing.T) {
	// Smaller shape k ⇒ heavier-tailed interarrivals ⇒ larger
	// coefficient of variation (CV² = 1/k for gamma renewal).
	cv := func(shape float64) float64 {
		spec := normalized(t, Spec{Model: ModelGamma, RateBps: 1e6, Shape: shape})
		ts, _ := drain(NewSource(spec, 1, 7, 120))
		var gaps []float64
		for i := 1; i < len(ts); i++ {
			gaps = append(gaps, ts[i]-ts[i-1])
		}
		var mean, ss float64
		for _, g := range gaps {
			mean += g
		}
		mean /= float64(len(gaps))
		for _, g := range gaps {
			ss += (g - mean) * (g - mean)
		}
		return math.Sqrt(ss/float64(len(gaps))) / mean
	}
	if cv(0.3) <= cv(4) {
		t.Fatalf("gamma CV did not fall with shape: cv(0.3)=%g cv(4)=%g", cv(0.3), cv(4))
	}
}

func TestSpecRejectsBadCohortAndReplayFields(t *testing.T) {
	for _, bad := range []Spec{
		{Model: ModelGamma, Shape: -1},
		{Model: ModelPoisson, Mode: "rewind"},
		{Model: ModelPoisson, Mode: ModeReplay},                                                // replay needs a trace file
		{Model: ModelPoisson, TraceFile: "x"},                                                  // trace file needs replay
		{Cohorts: []Cohort{{Name: "a", Share: 1}}},                                             // cohorts on full-buffer
		{Model: ModelPoisson, Cohorts: []Cohort{{Share: 1}}},                                   // unnamed
		{Model: ModelPoisson, Cohorts: []Cohort{{Name: "a", Share: 1}, {Name: "a", Share: 1}}}, // duplicate
		{Model: ModelPoisson, Cohorts: []Cohort{{Name: "a", Share: 0}}},                        // zero share
		{Model: ModelPoisson, Cohorts: []Cohort{{Name: "a", Share: 1, Model: ModelFullBuffer}}},
		{Model: ModelPoisson, Cohorts: []Cohort{{Name: "a", Share: 1, Diurnal: []Period{{Seconds: 5, Mult: 0}}}}},
		{Model: ModelPoisson, Cohorts: []Cohort{{Name: "a", Share: 1, Flash: &Flash{AtS: 1, Peak: 0.5}}}},
	} {
		s := bad
		if err := s.Normalize(); err == nil {
			t.Errorf("Normalize(%+v) accepted", bad)
		}
	}
	ok := Spec{Model: ModelPoisson, Mode: "generate"}
	if err := ok.Normalize(); err != nil || ok.Mode != ModeGenerate {
		t.Fatalf("mode generate: err=%v mode=%q", err, ok.Mode)
	}
}

func TestApportionCohorts(t *testing.T) {
	cohorts := []Cohort{{Share: 0.5}, {Share: 0.3}, {Share: 0.2}}
	counts := ApportionCohorts(cohorts, 10)
	if !reflect.DeepEqual(counts, []int{5, 3, 2}) {
		t.Fatalf("counts = %v", counts)
	}
	// Largest remainder: 7 UEs over (0.5, 0.3, 0.2) = exact (3.5, 2.1,
	// 1.4): floors (3, 2, 1), one leftover goes to the largest
	// fractional part (cohort 0).
	counts = ApportionCohorts(cohorts, 7)
	if sum(counts) != 7 || !reflect.DeepEqual(counts, []int{4, 2, 1}) {
		t.Fatalf("counts = %v", counts)
	}
	// Equal shares, ties to earlier cohorts; total always preserved.
	counts = ApportionCohorts([]Cohort{{Share: 1}, {Share: 1}, {Share: 1}}, 5)
	if !reflect.DeepEqual(counts, []int{2, 2, 1}) {
		t.Fatalf("tie counts = %v", counts)
	}
	for n := 0; n <= 29; n++ {
		if got := sum(ApportionCohorts(cohorts, n)); got != max(n, 0) {
			t.Fatalf("n=%d apportioned %d", n, got)
		}
	}
	if CohortOf([]int{2, 3}, 0) != 0 || CohortOf([]int{2, 3}, 2) != 1 || CohortOf([]int{2, 3}, 4) != 1 {
		t.Fatal("CohortOf mapping wrong")
	}
}

func sum(xs []int) int {
	var s int
	for _, x := range xs {
		s += x
	}
	return s
}

func TestNewSourcesLegacyPathByteIdentical(t *testing.T) {
	spec := normalized(t, Spec{Model: ModelPoisson, RateBps: 5e5})
	ids := []int{10, 11, 12}
	srcs := NewSources(spec, ids, 77, 20)
	for i, id := range ids {
		want, _ := drain(NewSource(spec, id, 77, 20))
		got, _ := drain(srcs[i])
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("UE %d: cohort-free NewSources diverged from NewSource", id)
		}
	}
}

func TestEnvelopeWarpMatchesCumulativeRate(t *testing.T) {
	c := &Cohort{
		Diurnal: []Period{{Seconds: 10, Mult: 0.5}, {Seconds: 10, Mult: 2}},
		Flash:   &Flash{AtS: 5, Peak: 3, RampS: 2, HoldS: 4, DecayS: 2},
	}
	env := newEnvelope(c, 40)
	if env.flat() {
		t.Fatal("envelope with diurnal+flash reported flat")
	}
	// warp must invert the cumulative work at every breakpoint.
	for i, w := range env.ws {
		if got := env.warp(w); math.Abs(got-env.ts[i]) > 1e-9 {
			t.Fatalf("warp(W(t))=%g, want t=%g", got, env.ts[i])
		}
	}
	// And be monotone between them.
	prev := -1.0
	for w := 0.0; w < env.totalWork(); w += env.totalWork() / 1000 {
		tt := env.warp(w)
		if tt < prev {
			t.Fatalf("warp not monotone at w=%g", w)
		}
		prev = tt
	}
	flat := newEnvelope(&Cohort{}, 40)
	if !flat.flat() || flat.totalWork() != 40 {
		t.Fatalf("empty envelope: flat=%v work=%g", flat.flat(), flat.totalWork())
	}
}

func TestFlashCrowdConcentratesArrivals(t *testing.T) {
	spec := normalized(t, Spec{
		Model: ModelPoisson, RateBps: 4e5,
		Cohorts: []Cohort{{
			Name: "crowd", Share: 1,
			Flash: &Flash{AtS: 10, Peak: 8, RampS: 2, HoldS: 6, DecayS: 2},
		}},
	})
	srcs := NewSources(spec, []int{0, 1, 2, 3}, 5, 30)
	inFlash, total := 0, 0
	for _, s := range srcs {
		ts, _ := drain(s)
		for _, at := range ts {
			total++
			if at >= 10 && at <= 20 {
				inFlash++
			}
		}
	}
	// The flash window is 1/3 of the horizon but carries ~8× rate; well
	// over half of all arrivals must land inside it.
	if total == 0 || float64(inFlash)/float64(total) < 0.5 {
		t.Fatalf("flash window holds %d/%d arrivals", inFlash, total)
	}
}

func TestCohortStreamsIndependent(t *testing.T) {
	// Adding a cohort must not perturb an existing cohort's stream for
	// the UEs that stay in it (streams are keyed by cohort index + UE
	// id, and apportionment keeps cohort 0's block prefix-stable).
	one := normalized(t, Spec{Model: ModelPoisson, RateBps: 1e6,
		Cohorts: []Cohort{{Name: "a", Share: 1}}})
	two := normalized(t, Spec{Model: ModelPoisson, RateBps: 1e6,
		Cohorts: []Cohort{{Name: "a", Share: 1}, {Name: "b", Share: 1}}})
	ids := []int{0, 1, 2, 3}
	s1 := NewSources(one, ids, 9, 10)
	s2 := NewSources(two, ids, 9, 10)
	t1, _ := drain(s1[0])
	t2, _ := drain(s2[0])
	if !reflect.DeepEqual(t1, t2) {
		t.Fatal("cohort a's UE 0 stream changed when cohort b was added")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	spec := normalized(t, Spec{Model: ModelPoisson, RateBps: 1e5})
	cap := NewCapture(spec, 0xfeed)
	cap.BeginPhase(2, []TraceUE{{ID: 1, X: 10, Y: 20}, {ID: 2, X: 30, Y: 40}})
	cap.Arrival(Arrival{UE: 0, T: 0.5, Bytes: 100})
	cap.Arrival(Arrival{UE: 1, T: 1.5, Bytes: 200})
	cap.BeginPhase(2, []TraceUE{{ID: 1, X: 11, Y: 21}, {ID: 2, X: 31, Y: 41}})
	cap.Arrival(Arrival{UE: 1, T: 0.25, Bytes: 300})

	path := filepath.Join(t.TempDir(), "trace.skyr")
	if _, err := cap.Trace.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Fingerprint != 0xfeed || tr.Spec.Model != ModelPoisson {
		t.Fatalf("meta = %+v", tr)
	}
	if !reflect.DeepEqual(tr.Phases, cap.Trace.Phases) {
		t.Fatalf("phases round-trip mismatch:\n%+v\n%+v", tr.Phases, cap.Trace.Phases)
	}

	ph, err := tr.Phase(0)
	if err != nil {
		t.Fatal(err)
	}
	st := ph.Stream()
	if a, ok := st.Pop(1.0); !ok || a.T != 0.5 || a.Bytes != 100 {
		t.Fatalf("pop 1 = %+v %v", a, ok)
	}
	if _, ok := st.Pop(1.0); ok {
		t.Fatal("popped past limit")
	}
	if a, ok := st.Pop(2.0); !ok || a.Bytes != 200 {
		t.Fatalf("pop 2 = %+v %v", a, ok)
	}
	if _, ok := st.Pop(99); ok {
		t.Fatal("popped past end")
	}
	if _, err := tr.Phase(2); err == nil {
		t.Fatal("phase past end accepted")
	}
}
