// Package traffic is the deterministic discrete-event traffic
// subsystem: seeded per-UE workload models (CBR, Poisson, ON/OFF
// bursty, heavy-tailed web flows, full-buffer) generate timestamped
// downlink packets that the serving phase pushes through the
// EPC→GTP-U→bearer→PRB-scheduler path, and a KPI collector turns the
// deliveries into per-UE throughput / queueing-delay / loss rows. The
// paper's evaluation serves real downlink traffic during the serving
// phase (§4.4, Fig 21–23); this package replaces the full-buffer
// abstraction with an arrival process so heavy and bursty load are
// first-class scenario knobs.
//
// Everything is a pure function of (spec, seed): the event core is a
// binary min-heap keyed by (time, sequence), each UE draws from its
// own splitmix-derived rand stream, and no map iteration or wall clock
// touches the schedule — identical seeds and knobs yield byte-identical
// KPI output at any worker count.
package traffic

// Event is one scheduled occurrence: a payload due at time T. Seq is
// the push-order tiebreak, assigned by the queue.
type Event[T any] struct {
	T       float64
	Seq     uint64
	Payload T
}

// EventQueue is a monotonic discrete-event queue: a binary min-heap
// keyed by (time, sequence). Sequence numbers are assigned at Push, so
// simultaneous events pop in push order and the pop sequence is a pure
// function of the push sequence. "Monotonic" is enforced at Push: an
// event scheduled before the latest popped time is clamped to it, so
// simulated time never runs backwards even under floating-point
// round-off in workload inter-arrival sums.
type EventQueue[T any] struct {
	heap    []Event[T]
	nextSeq uint64
	nowPop  float64 // latest popped time
}

// Len returns the number of pending events.
func (q *EventQueue[T]) Len() int { return len(q.heap) }

// Push schedules payload at time t (clamped to the latest popped time).
func (q *EventQueue[T]) Push(t float64, payload T) {
	if t < q.nowPop {
		t = q.nowPop
	}
	ev := Event[T]{T: t, Seq: q.nextSeq, Payload: payload}
	q.nextSeq++
	q.heap = append(q.heap, ev)
	q.siftUp(len(q.heap) - 1)
}

// Peek returns the earliest event without removing it.
func (q *EventQueue[T]) Peek() (Event[T], bool) {
	if len(q.heap) == 0 {
		return Event[T]{}, false
	}
	return q.heap[0], true
}

// Pop removes and returns the earliest event.
func (q *EventQueue[T]) Pop() (Event[T], bool) {
	if len(q.heap) == 0 {
		return Event[T]{}, false
	}
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	if last > 0 {
		q.siftDown(0)
	}
	q.nowPop = top.T
	return top, true
}

// before orders events by (time, sequence).
func (q *EventQueue[T]) before(a, b Event[T]) bool {
	if a.T != b.T {
		return a.T < b.T
	}
	return a.Seq < b.Seq
}

func (q *EventQueue[T]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.before(q.heap[i], q.heap[parent]) {
			return
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *EventQueue[T]) siftDown(i int) {
	n := len(q.heap)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && q.before(q.heap[left], q.heap[smallest]) {
			smallest = left
		}
		if right < n && q.before(q.heap[right], q.heap[smallest]) {
			smallest = right
		}
		if smallest == i {
			return
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
}
