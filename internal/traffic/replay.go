package traffic

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/checkpoint"
)

// Trace capture & replay: a run can record the packet arrivals its
// workload generated (plus each UE's position at every serving-phase
// start — the run's mobility, as the traffic path sees it) into a
// versioned container file, and a later run with Spec.Mode = replay
// feeds the recorded arrivals through the same serving loop instead of
// generating fresh ones. Because arrivals are captured upstream of the
// fault plan and the bearer path, a replay against the same scenario
// seed reproduces the original per-UE KPI rows byte for byte — the
// recorded-trace regression workload the evaluation methodology calls
// for.

// tracePayloadVersion is the payload version written into
// KindTrafficTrace containers; bump on any section layout change.
const tracePayloadVersion = 1

// Trace section names.
const (
	traceSectionMeta   = "meta"
	traceSectionPhases = "phases"
)

// TraceUE is one UE at a phase start: its ID and planar position.
type TraceUE struct {
	ID   int
	X, Y float64
}

// TracePhase is one recorded serving phase: its duration, the UE
// field at phase start, and the merged arrival stream in pop order
// (times relative to the phase start).
type TracePhase struct {
	Seconds  float64
	UEs      []TraceUE
	Arrivals []Arrival
}

// Trace is a recorded traffic workload.
type Trace struct {
	// Spec is the capturing run's normalized traffic spec; replay uses
	// its Model to label the KPI rows exactly as the original did.
	Spec Spec
	// Fingerprint is the capturing run's scenario fingerprint, so a
	// trace cannot silently replay into a different scenario.
	Fingerprint uint64
	// Phases are the serving phases in execution order.
	Phases []TracePhase
}

// traceMeta is the gob form of the Trace header.
type traceMeta struct {
	Spec        Spec
	Fingerprint uint64
	Phases      int
}

// WriteFile commits the trace atomically as a checkpoint-format
// container and returns the encoded size.
func (tr *Trace) WriteFile(path string) (int64, error) {
	meta, err := gobTrace(traceMeta{Spec: tr.Spec, Fingerprint: tr.Fingerprint, Phases: len(tr.Phases)})
	if err != nil {
		return 0, fmt.Errorf("traffic: encoding trace meta: %w", err)
	}
	phases, err := gobTrace(tr.Phases)
	if err != nil {
		return 0, fmt.Errorf("traffic: encoding trace phases: %w", err)
	}
	c := checkpoint.New(checkpoint.KindTrafficTrace, tracePayloadVersion, tr.Fingerprint)
	c.Add(traceSectionMeta, meta)
	c.Add(traceSectionPhases, phases)
	return checkpoint.WriteFileAtomic(path, c)
}

// ReadTraceFile decodes and verifies a trace file.
func ReadTraceFile(path string) (*Trace, error) {
	c, err := checkpoint.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if c.Kind != checkpoint.KindTrafficTrace {
		return nil, fmt.Errorf("%w: %q, want %q", checkpoint.ErrKind, c.Kind, checkpoint.KindTrafficTrace)
	}
	if c.Version != tracePayloadVersion {
		return nil, fmt.Errorf("%w: trace payload version %d, support %d",
			checkpoint.ErrVersion, c.Version, tracePayloadVersion)
	}
	var meta traceMeta
	b, ok := c.Section(traceSectionMeta)
	if !ok {
		return nil, fmt.Errorf("traffic: trace has no %q section", traceSectionMeta)
	}
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&meta); err != nil {
		return nil, fmt.Errorf("traffic: decoding trace meta: %w", err)
	}
	tr := &Trace{Spec: meta.Spec, Fingerprint: meta.Fingerprint}
	b, ok = c.Section(traceSectionPhases)
	if !ok {
		return nil, fmt.Errorf("traffic: trace has no %q section", traceSectionPhases)
	}
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&tr.Phases); err != nil {
		return nil, fmt.Errorf("traffic: decoding trace phases: %w", err)
	}
	if len(tr.Phases) != meta.Phases {
		return nil, fmt.Errorf("traffic: trace declares %d phases, carries %d", meta.Phases, len(tr.Phases))
	}
	return tr, nil
}

func gobTrace(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Phase returns the recorded phase by index (the world's serve-phase
// counter), erroring when the replayed run serves more phases than
// were captured.
func (tr *Trace) Phase(i uint64) (*TracePhase, error) {
	if i >= uint64(len(tr.Phases)) {
		return nil, fmt.Errorf("traffic: trace has %d phases, phase %d requested (replayed run serves more phases than were captured)",
			len(tr.Phases), i)
	}
	return &tr.Phases[i], nil
}

// Stream is the serving loop's view of a phase's arrivals: Generator
// (live workload models) and replayStream (recorded traces) both
// satisfy it.
type Stream interface {
	// Pop returns the next arrival strictly before limit; ok=false when
	// none remains before limit.
	Pop(limit float64) (Arrival, bool)
}

var (
	_ Stream = (*Generator)(nil)
	_ Stream = (*replayStream)(nil)
)

// Stream returns the phase's arrivals as a pop-order stream.
func (p *TracePhase) Stream() Stream { return &replayStream{arrivals: p.Arrivals} }

type replayStream struct {
	arrivals []Arrival
	next     int
}

func (s *replayStream) Pop(limit float64) (Arrival, bool) {
	if s.next >= len(s.arrivals) || s.arrivals[s.next].T >= limit {
		return Arrival{}, false
	}
	a := s.arrivals[s.next]
	s.next++
	return a, true
}

// Capture accumulates a run's serving phases for later replay.
type Capture struct {
	Trace Trace
	cur   *TracePhase
}

// NewCapture starts a capture for the given (normalized) traffic spec
// and scenario fingerprint.
func NewCapture(spec Spec, fingerprint uint64) *Capture {
	return &Capture{Trace: Trace{Spec: spec, Fingerprint: fingerprint}}
}

// BeginPhase opens a new serving phase with the UE field at its start.
func (c *Capture) BeginPhase(seconds float64, ues []TraceUE) {
	c.Trace.Phases = append(c.Trace.Phases, TracePhase{Seconds: seconds, UEs: ues})
	c.cur = &c.Trace.Phases[len(c.Trace.Phases)-1]
}

// Arrival records one generated arrival (pre-fault, pre-bearer — the
// offered workload itself).
func (c *Capture) Arrival(a Arrival) {
	c.cur.Arrivals = append(c.cur.Arrivals, a)
}
