package traffic

import "math"

// DelayBuckets are the queueing-delay histogram upper bounds in
// seconds: 40 geometric buckets from 0.1 ms to 60 s. They are shared
// by the per-UE percentile estimator and the /metrics histogram so the
// two views of the same serving phase agree.
var DelayBuckets = func() []float64 {
	const n = 40
	lo, hi := 1e-4, 60.0
	r := math.Pow(hi/lo, 1/float64(n-1))
	out := make([]float64, n)
	v := lo
	for i := range out {
		out[i] = v
		v *= r
	}
	return out
}()

// UEKPI is one UE's serving-phase outcome at MAC-PDU granularity —
// the per-UE/per-bearer throughput, delay and loss row the LENA-style
// requirements call the minimum meaningful simulator output.
type UEKPI struct {
	UE int `json:"ue"`
	// Cell is the UE's serving cell at the end of the phase and
	// Handovers the number of handovers it completed during it; both
	// stay zero (and off the wire) outside multi-cell runs.
	Cell      int    `json:"cell,omitempty"`
	Handovers uint64 `json:"handovers,omitempty"`

	OfferedPackets   uint64 `json:"offered_packets"`
	OfferedBytes     uint64 `json:"offered_bytes"`
	DeliveredPackets uint64 `json:"delivered_packets"`
	DeliveredBytes   uint64 `json:"delivered_bytes"`
	// Dropped counts bearer tail-drops (queue overflow); Backlog is
	// what was still queued when the serving phase ended (neither
	// delivered nor lost).
	DroppedPackets uint64 `json:"dropped_packets"`
	DroppedBytes   uint64 `json:"dropped_bytes"`
	BacklogPackets int    `json:"backlog_packets"`
	PeakQueue      int    `json:"peak_queue"`

	// ThroughputBps is delivered goodput over the serving interval.
	ThroughputBps float64 `json:"throughput_bps"`
	// Delay statistics are enqueue→delivery queueing delays of the
	// delivered packets. P95 is the upper bound of the histogram
	// bucket containing the 95th percentile (DelayBuckets spacing).
	MeanDelayS float64 `json:"mean_delay_s"`
	P95DelayS  float64 `json:"p95_delay_s"`
	MaxDelayS  float64 `json:"max_delay_s"`
	// LossFrac is dropped / offered packets.
	LossFrac float64 `json:"loss_frac"`

	// Fault-injection splits (zero, and absent from the wire form,
	// without an active fault schedule). FaultDropped packets are also
	// counted in Dropped — LossFrac stays the total loss the UE saw —
	// and Duplicated packets are also counted in Offered. StarvedTTIs
	// counts scheduler TTIs the UE spent undecodable with data queued
	// (the eNodeB-side view of a churn/loss window).
	FaultDroppedPackets uint64 `json:"fault_dropped_packets,omitempty"`
	FaultDroppedBytes   uint64 `json:"fault_dropped_bytes,omitempty"`
	DuplicatedPackets   uint64 `json:"duplicated_packets,omitempty"`
	DuplicatedBytes     uint64 `json:"duplicated_bytes,omitempty"`
	StarvedTTIs         uint64 `json:"starved_ttis,omitempty"`
}

// Summary aggregates a serving phase across UEs.
type Summary struct {
	Model   Model   `json:"model"`
	Seconds float64 `json:"seconds"`
	UEs     int     `json:"ues"`

	OfferedBytes   uint64 `json:"offered_bytes"`
	DeliveredBytes uint64 `json:"delivered_bytes"`
	DroppedBytes   uint64 `json:"dropped_bytes"`
	BacklogPackets int    `json:"backlog_packets"`

	OfferedBps   float64 `json:"offered_bps"`
	DeliveredBps float64 `json:"delivered_bps"`
	// MeanDelayS is the delivered-packet-weighted mean; P95DelayS
	// comes from the merged delay histogram.
	MeanDelayS float64 `json:"mean_delay_s"`
	P95DelayS  float64 `json:"p95_delay_s"`
	LossFrac   float64 `json:"loss_frac"`

	// JainFairness is Jain's fairness index over the per-UE delivered
	// throughputs: (Σx)²/(n·Σx²), 1 for a perfectly even split, 1/n
	// when one UE takes everything. Zero (and absent) when nothing was
	// delivered.
	JainFairness float64 `json:"jain_fairness,omitempty"`

	// Fault-injection aggregates (absent without an active schedule).
	FaultDroppedBytes uint64 `json:"fault_dropped_bytes,omitempty"`
	DuplicatedBytes   uint64 `json:"duplicated_bytes,omitempty"`
	StarvedTTIs       uint64 `json:"starved_ttis,omitempty"`
}

// JainIndex is Jain's fairness index (Σx)²/(n·Σx²) over non-negative
// values; it returns 0 for an empty or all-zero input. The scheduler
// comment has long admitted max-CQI trades fairness for throughput —
// this is the measurement that makes the trade visible per cell and
// fleet-wide.
func JainIndex(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 || len(xs) == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Report is a finished serving phase: per-UE rows plus the aggregate.
type Report struct {
	KPIs    []UEKPI `json:"kpis"`
	Summary Summary `json:"summary"`
}

// ueAcc accumulates one UE's counters during the serving phase.
type ueAcc struct {
	offeredPkts, offeredBytes     uint64
	deliveredPkts, deliveredBytes uint64
	droppedPkts, droppedBytes     uint64
	faultPkts, faultBytes         uint64
	dupPkts, dupBytes             uint64
	starvedTTIs                   uint64
	delaySum, delayMax            float64
	delayHist                     []uint32
	delayInf                      uint32
	// fbBits holds the exact full-buffer grant (fractional bits), so
	// that model's throughput matches the scheduler's accounting to the
	// last bit rather than truncating to whole bytes.
	fbBits float64
}

// Collector gathers serving-phase events into KPI rows. It is not
// concurrency-safe: the serving loop is single-threaded per world,
// which is exactly what keeps the output byte-identical.
type Collector struct {
	model Model
	ueIDs []int
	acc   []ueAcc
}

// NewCollector prepares per-UE accumulators; ueIDs are the world's UE
// identifiers in index order.
func NewCollector(model Model, ueIDs []int) *Collector {
	c := &Collector{model: model, ueIDs: ueIDs, acc: make([]ueAcc, len(ueIDs))}
	for i := range c.acc {
		c.acc[i].delayHist = make([]uint32, len(DelayBuckets))
	}
	return c
}

// Offered records one generated packet for UE index i.
func (c *Collector) Offered(i, bytes int) {
	c.acc[i].offeredPkts++
	c.acc[i].offeredBytes += uint64(bytes)
}

// Dropped records one bearer tail-drop for UE index i.
func (c *Collector) Dropped(i, bytes int) {
	c.acc[i].droppedPkts++
	c.acc[i].droppedBytes += uint64(bytes)
}

// FaultDropped records one packet lost to an injected fault (GTP-U
// loss window or churn outage) for UE index i. The packet counts as
// dropped — loss is loss to the UE, whatever caused it — with the
// fault split kept separately.
func (c *Collector) FaultDropped(i, bytes int) {
	c.Dropped(i, bytes)
	c.acc[i].faultPkts++
	c.acc[i].faultBytes += uint64(bytes)
}

// Duplicated records one injected duplicate of a packet for UE index
// i (the duplicate copy itself is also Offered and delivered or
// dropped like any other packet).
func (c *Collector) Duplicated(i, bytes int) {
	c.acc[i].dupPkts++
	c.acc[i].dupBytes += uint64(bytes)
}

// Starved records n scheduler TTIs UE index i spent with queued data
// but an undecodable channel.
func (c *Collector) Starved(i int, n uint64) {
	c.acc[i].starvedTTIs += n
}

// Delivered records one delivered packet and its queueing delay.
func (c *Collector) Delivered(i, bytes int, delayS float64) {
	a := &c.acc[i]
	a.deliveredPkts++
	a.deliveredBytes += uint64(bytes)
	a.delaySum += delayS
	if delayS > a.delayMax {
		a.delayMax = delayS
	}
	if bi := bucketFor(delayS); bi >= 0 {
		a.delayHist[bi]++
	} else {
		a.delayInf++
	}
}

// bucketFor returns the DelayBuckets index containing v, or -1 for the
// overflow bucket.
func bucketFor(v float64) int {
	for i, b := range DelayBuckets {
		if v <= b {
			return i
		}
	}
	return -1
}

// FullBufferServed credits bits delivered to UE index i under the
// full-buffer model (no packets, no delay: the grant is the goodput).
func (c *Collector) FullBufferServed(i int, bits float64) {
	bytes := uint64(bits / 8)
	c.acc[i].offeredBytes += bytes
	c.acc[i].deliveredBytes += bytes
	c.acc[i].fbBits += bits
}

// percentile returns the upper bound of the histogram bucket holding
// quantile q, falling back to maxDelay for the overflow bucket.
func percentile(hist []uint32, inf uint32, maxDelay float64, q float64) float64 {
	var total uint64
	for _, n := range hist {
		total += uint64(n)
	}
	total += uint64(inf)
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	var cum uint64
	for i, n := range hist {
		cum += uint64(n)
		if cum >= target {
			return DelayBuckets[i]
		}
	}
	return maxDelay
}

// Report freezes the collector into per-UE rows and the aggregate.
// backlog and peak give each UE's end-of-phase queue depth and peak
// queue depth (nil for models without queues).
func (c *Collector) Report(seconds float64, backlog, peak []int) *Report {
	rep := &Report{KPIs: make([]UEKPI, len(c.acc))}
	sum := &rep.Summary
	sum.Model = c.model
	sum.Seconds = seconds
	sum.UEs = len(c.acc)

	merged := make([]uint32, len(DelayBuckets))
	var mergedInf uint32
	var delaySum, delayMax float64
	var offeredPkts, droppedPkts, deliveredPkts uint64

	for i := range c.acc {
		a := &c.acc[i]
		k := UEKPI{
			UE:               c.ueIDs[i],
			OfferedPackets:   a.offeredPkts,
			OfferedBytes:     a.offeredBytes,
			DeliveredPackets: a.deliveredPkts,
			DeliveredBytes:   a.deliveredBytes,
			DroppedPackets:   a.droppedPkts,
			DroppedBytes:     a.droppedBytes,
			MaxDelayS:        a.delayMax,

			FaultDroppedPackets: a.faultPkts,
			FaultDroppedBytes:   a.faultBytes,
			DuplicatedPackets:   a.dupPkts,
			DuplicatedBytes:     a.dupBytes,
			StarvedTTIs:         a.starvedTTIs,
		}
		if backlog != nil {
			k.BacklogPackets = backlog[i]
		}
		if peak != nil {
			k.PeakQueue = peak[i]
		}
		if seconds > 0 {
			k.ThroughputBps = float64(a.deliveredBytes) * 8 / seconds
			if a.fbBits > 0 {
				k.ThroughputBps = a.fbBits / seconds
			}
		}
		if a.deliveredPkts > 0 {
			k.MeanDelayS = a.delaySum / float64(a.deliveredPkts)
			k.P95DelayS = percentile(a.delayHist, a.delayInf, a.delayMax, 0.95)
		}
		if a.offeredPkts > 0 {
			k.LossFrac = float64(a.droppedPkts) / float64(a.offeredPkts)
		}
		rep.KPIs[i] = k

		sum.OfferedBytes += a.offeredBytes
		sum.DeliveredBytes += a.deliveredBytes
		sum.DroppedBytes += a.droppedBytes
		sum.BacklogPackets += k.BacklogPackets
		sum.FaultDroppedBytes += a.faultBytes
		sum.DuplicatedBytes += a.dupBytes
		sum.StarvedTTIs += a.starvedTTIs
		offeredPkts += a.offeredPkts
		droppedPkts += a.droppedPkts
		deliveredPkts += a.deliveredPkts
		delaySum += a.delaySum
		if a.delayMax > delayMax {
			delayMax = a.delayMax
		}
		for bi, n := range a.delayHist {
			merged[bi] += n
		}
		mergedInf += a.delayInf
	}

	if seconds > 0 {
		sum.OfferedBps = float64(sum.OfferedBytes) * 8 / seconds
		sum.DeliveredBps = float64(sum.DeliveredBytes) * 8 / seconds
	}
	if deliveredPkts > 0 {
		sum.MeanDelayS = delaySum / float64(deliveredPkts)
		sum.P95DelayS = percentile(merged, mergedInf, delayMax, 0.95)
	}
	if offeredPkts > 0 {
		sum.LossFrac = float64(droppedPkts) / float64(offeredPkts)
	}
	tputs := make([]float64, len(rep.KPIs))
	for i := range rep.KPIs {
		tputs[i] = rep.KPIs[i].ThroughputBps
	}
	sum.JainFairness = JainIndex(tputs)
	return rep
}
