package traffic

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func normalized(t *testing.T, s Spec) Spec {
	t.Helper()
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSpecNormalizeDefaults(t *testing.T) {
	s := normalized(t, Spec{Model: ModelCBR})
	if s.RateBps != 2e6 || s.PacketBytes != 1200 {
		t.Fatalf("defaults wrong: %+v", s)
	}
	empty := normalized(t, Spec{})
	if empty.Model != ModelFullBuffer {
		t.Fatalf("empty model should default to full-buffer, got %q", empty.Model)
	}
}

func TestSpecNormalizeRejectsBadValues(t *testing.T) {
	for _, bad := range []Spec{
		{Model: "warp-drive"},
		{Model: ModelCBR, RateBps: -1},
		{Model: ModelCBR, PacketBytes: 4},
		{Model: ModelWeb, ParetoAlpha: 0.9},
		{Model: ModelOnOff, BurstS: -2},
	} {
		s := bad
		if err := s.Normalize(); err == nil {
			t.Errorf("Normalize(%+v) accepted", bad)
		}
	}
}

func TestEventQueueOrdersByTimeThenSeq(t *testing.T) {
	var q EventQueue[int]
	q.Push(3.0, 30)
	q.Push(1.0, 10)
	q.Push(2.0, 20)
	q.Push(1.0, 11) // same time: must pop after the earlier push
	var got []int
	for {
		ev, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, ev.Payload)
	}
	want := []int{10, 11, 20, 30}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pop order %v, want %v", got, want)
	}
}

func TestEventQueueMonotonicClamp(t *testing.T) {
	var q EventQueue[int]
	q.Push(5.0, 1)
	q.Pop()
	q.Push(1.0, 2) // in the past: clamped to 5.0
	ev, _ := q.Peek()
	if ev.T != 5.0 {
		t.Fatalf("past event not clamped: t=%g", ev.T)
	}
}

func TestEventQueueRandomizedHeapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var q EventQueue[int]
	for i := 0; i < 1000; i++ {
		q.Push(rng.Float64()*100, i)
	}
	last := -1.0
	for {
		ev, ok := q.Pop()
		if !ok {
			break
		}
		if ev.T < last {
			t.Fatalf("pop went backwards: %g after %g", ev.T, last)
		}
		last = ev.T
	}
}

// drain collects every arrival a source produces.
func drain(src Source) (ts []float64, bytes int) {
	for {
		t, size, ok := src.Next()
		if !ok {
			return ts, bytes
		}
		ts = append(ts, t)
		bytes += size
	}
}

func TestSourcesDeterministicAndRateAccurate(t *testing.T) {
	const horizon = 30.0
	for _, model := range []Model{ModelCBR, ModelPoisson, ModelOnOff, ModelWeb} {
		spec := normalized(t, Spec{Model: model, RateBps: 1e6})
		t1, b1 := drain(NewSource(spec, 3, 99, horizon))
		t2, b2 := drain(NewSource(spec, 3, 99, horizon))
		if !reflect.DeepEqual(t1, t2) || b1 != b2 {
			t.Fatalf("%s: same seed produced different streams", model)
		}
		t3, _ := drain(NewSource(spec, 4, 99, horizon))
		if reflect.DeepEqual(t1, t3) {
			t.Errorf("%s: different UEs share a stream", model)
		}
		// Long-run mean within 30% of the nominal rate (web is the
		// loosest: Pareto flow sizes converge slowly).
		got := float64(b1) * 8 / horizon
		if math.Abs(got-spec.RateBps) > 0.3*spec.RateBps {
			t.Errorf("%s: offered %0.f bps, want ~%0.f", model, got, spec.RateBps)
		}
		// Arrivals are in order and inside the horizon.
		last := 0.0
		for _, ti := range t1 {
			if ti < last || ti >= horizon {
				t.Fatalf("%s: arrival %g out of order or past horizon", model, ti)
			}
			last = ti
		}
	}
}

func TestOnOffIsBurstier(t *testing.T) {
	const horizon = 60.0
	cbr := normalized(t, Spec{Model: ModelCBR, RateBps: 1e6})
	onoff := normalized(t, Spec{Model: ModelOnOff, RateBps: 1e6})
	cv := func(ts []float64) float64 {
		var iats []float64
		for i := 1; i < len(ts); i++ {
			iats = append(iats, ts[i]-ts[i-1])
		}
		var sum float64
		for _, x := range iats {
			sum += x
		}
		mean := sum / float64(len(iats))
		var vv float64
		for _, x := range iats {
			vv += (x - mean) * (x - mean)
		}
		return math.Sqrt(vv/float64(len(iats))) / mean
	}
	tc, _ := drain(NewSource(cbr, 0, 7, horizon))
	to, _ := drain(NewSource(onoff, 0, 7, horizon))
	if cv(to) < 2*cv(tc) {
		t.Errorf("onoff CV %.2f not clearly burstier than cbr CV %.2f", cv(to), cv(tc))
	}
}

func TestWebFlowsAreHeavyTailed(t *testing.T) {
	spec := normalized(t, Spec{Model: ModelWeb, RateBps: 4e6})
	ts, _ := drain(NewSource(spec, 1, 11, 120))
	if len(ts) == 0 {
		t.Fatal("web source produced nothing")
	}
	// Back-to-back paced packets inside flows → many gaps exactly at
	// the pacing interval.
	gap := float64(spec.PacketBytes*8) / spec.PacingBps
	paced := 0
	for i := 1; i < len(ts); i++ {
		if math.Abs((ts[i]-ts[i-1])-gap) < 1e-12 {
			paced++
		}
	}
	if paced == 0 {
		t.Error("no in-flow pacing gaps observed")
	}
}

func TestGeneratorMergesInOrder(t *testing.T) {
	spec := normalized(t, Spec{Model: ModelPoisson, RateBps: 5e5})
	var sources []Source
	for ue := 0; ue < 5; ue++ {
		sources = append(sources, NewSource(spec, ue, 123, 10))
	}
	g := NewGenerator(sources)
	last := 0.0
	n := 0
	for {
		a, ok := g.Pop(math.Inf(1))
		if !ok {
			break
		}
		if a.T < last {
			t.Fatalf("merge out of order: %g after %g", a.T, last)
		}
		last = a.T
		n++
	}
	if n == 0 {
		t.Fatal("generator produced nothing")
	}
	// Pop with a limit never returns arrivals at/after the limit.
	g2 := NewGenerator([]Source{NewSource(spec, 0, 123, 10)})
	if a, ok := g2.Pop(0); ok {
		t.Fatalf("Pop(0) returned arrival at %g", a.T)
	}
}

func TestCollectorReportAndPercentiles(t *testing.T) {
	c := NewCollector(ModelCBR, []int{0, 1})
	c.Offered(0, 100)
	c.Offered(0, 100)
	c.Offered(1, 100)
	c.Delivered(0, 100, 0.010)
	c.Delivered(0, 100, 0.020)
	c.Dropped(1, 100)
	rep := c.Report(2, []int{0, 0}, []int{2, 1})

	k0 := rep.KPIs[0]
	if k0.DeliveredPackets != 2 || k0.ThroughputBps != 800 {
		t.Fatalf("UE0 row wrong: %+v", k0)
	}
	if math.Abs(k0.MeanDelayS-0.015) > 1e-12 || k0.MaxDelayS != 0.020 {
		t.Fatalf("UE0 delay wrong: %+v", k0)
	}
	if k0.P95DelayS < 0.020 || k0.P95DelayS > 0.030 {
		t.Fatalf("UE0 p95 %g not in bucket above 20ms", k0.P95DelayS)
	}
	k1 := rep.KPIs[1]
	if k1.LossFrac != 1 || k1.DroppedBytes != 100 {
		t.Fatalf("UE1 loss wrong: %+v", k1)
	}
	if rep.Summary.OfferedBytes != 300 || rep.Summary.DeliveredBytes != 200 {
		t.Fatalf("summary wrong: %+v", rep.Summary)
	}
	if math.Abs(rep.Summary.LossFrac-1.0/3) > 1e-12 {
		t.Fatalf("summary loss %g", rep.Summary.LossFrac)
	}
}

func TestCollectorFullBuffer(t *testing.T) {
	c := NewCollector(ModelFullBuffer, []int{7})
	c.FullBufferServed(0, 8000) // 1000 bytes
	rep := c.Report(1, nil, nil)
	k := rep.KPIs[0]
	if k.DeliveredBytes != 1000 || k.ThroughputBps != 8000 {
		t.Fatalf("full-buffer row wrong: %+v", k)
	}
	if k.MeanDelayS != 0 || k.LossFrac != 0 {
		t.Fatalf("full-buffer must report no delay/loss: %+v", k)
	}
}

func TestDelayBucketsMonotone(t *testing.T) {
	for i := 1; i < len(DelayBuckets); i++ {
		if DelayBuckets[i] <= DelayBuckets[i-1] {
			t.Fatalf("bucket %d not increasing", i)
		}
	}
	if DelayBuckets[0] > 1e-4+1e-15 || DelayBuckets[len(DelayBuckets)-1] < 59 {
		t.Fatalf("bucket range wrong: [%g, %g]", DelayBuckets[0], DelayBuckets[len(DelayBuckets)-1])
	}
}
