package scenario

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/rem"
	"repro/internal/traffic"
)

func ckptSpec(ctrl string) Spec {
	return Spec{
		Terrain: "FLAT", UEs: 3, Controller: ctrl,
		BudgetM: 200, Epochs: 4, Seed: 7, ServeS: 1,
		Traffic: &traffic.Spec{Model: traffic.ModelOnOff, RateBps: 3e6},
	}
}

func encodeStore(t *testing.T, s *rem.Store) []byte {
	t.Helper()
	if s == nil {
		return nil
	}
	b, err := s.Encode()
	if err != nil {
		t.Fatalf("encoding store: %v", err)
	}
	return b
}

// TestResumeByteIdentical is the checkpoint correctness contract: a
// run interrupted after epoch N and resumed in a "new process" (fresh
// world, fresh controller, everything re-derived from the checkpoint
// file) produces byte-identical output to the uninterrupted run — for
// the full SkyRAN controller (REM store, trackers, histories, serving
// backlog) and for the RNG-bearing random baseline.
func TestResumeByteIdentical(t *testing.T) {
	for _, ctrl := range []string{"skyran", "random"} {
		t.Run(ctrl, func(t *testing.T) {
			spec := ckptSpec(ctrl)
			ref, refStore, err := Run(context.Background(), spec, Options{})
			if err != nil {
				t.Fatal(err)
			}
			refJSON, err := MarshalResult(ref)
			if err != nil {
				t.Fatal(err)
			}

			// Interrupted run: checkpoint every epoch, cancel after 2.
			dir := t.TempDir()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var events []CheckpointEvent
			_, _, err = Run(ctx, spec, Options{
				Checkpoint: &CheckpointConfig{Dir: dir},
				OnEpoch: func(rep EpochReport) {
					if rep.Epoch == 2 {
						cancel()
					}
				},
				OnCheckpoint: func(ev CheckpointEvent) { events = append(events, ev) },
			})
			if err == nil {
				t.Fatal("cancelled run reported no error")
			}
			if len(events) < 2 {
				t.Fatalf("expected ≥2 checkpoint events, got %d", len(events))
			}
			ckpt := filepath.Join(dir, checkpoint.EpochFileName(2))
			if _, err := os.Stat(ckpt); err != nil {
				t.Fatalf("checkpoint missing: %v", err)
			}

			meta, err := InspectCheckpoint(ckpt)
			if err != nil {
				t.Fatalf("InspectCheckpoint: %v", err)
			}
			if meta.NextEpoch != 2 || meta.Spec.Controller != ctrl {
				t.Fatalf("meta: %+v", meta)
			}

			got, gotStore, err := Resume(context.Background(), ckpt, &spec, Options{})
			if err != nil {
				t.Fatalf("Resume: %v", err)
			}
			gotJSON, err := MarshalResult(got)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(refJSON, gotJSON) {
				t.Fatalf("resumed result differs from uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s", refJSON, gotJSON)
			}
			if !bytes.Equal(encodeStore(t, refStore), encodeStore(t, gotStore)) {
				t.Fatal("resumed REM store differs from uninterrupted run")
			}
		})
	}
}

// TestResumeFromFinalCheckpoint resumes a checkpoint taken after the
// last epoch: no epochs remain, and the stored reports alone must
// reproduce the full result.
func TestResumeFromFinalCheckpoint(t *testing.T) {
	spec := ckptSpec("random")
	dir := t.TempDir()
	ref, _, err := Run(context.Background(), spec, Options{
		Checkpoint: &CheckpointConfig{Dir: dir, EveryEpochs: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	files, err := checkpoint.ListDir(dir)
	if err != nil || len(files) != 2 {
		t.Fatalf("ListDir: %v, %v", files, err)
	}
	got, _, err := Resume(context.Background(), files[len(files)-1], nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	refJSON, _ := MarshalResult(ref)
	gotJSON, _ := MarshalResult(got)
	if !bytes.Equal(refJSON, gotJSON) {
		t.Fatal("resume from final checkpoint differs")
	}
}

// TestCheckpointRetention keeps only the newest Retain files.
func TestCheckpointRetention(t *testing.T) {
	spec := ckptSpec("random")
	dir := t.TempDir()
	if _, _, err := Run(context.Background(), spec, Options{
		Checkpoint: &CheckpointConfig{Dir: dir, Retain: 2},
	}); err != nil {
		t.Fatal(err)
	}
	files, err := checkpoint.ListDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 || filepath.Base(files[1]) != checkpoint.EpochFileName(4) {
		t.Fatalf("retention kept %v", files)
	}
}

// TestResumeWrongScenarioRejected: restoring into a different scenario
// fails with the fingerprint error, not a CRC error.
func TestResumeWrongScenarioRejected(t *testing.T) {
	spec := ckptSpec("random")
	dir := t.TempDir()
	if _, _, err := Run(context.Background(), spec, Options{
		Checkpoint: &CheckpointConfig{Dir: dir},
	}); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, checkpoint.EpochFileName(2))
	other := spec
	other.Seed = 8
	_, _, err := Resume(context.Background(), ckpt, &other, Options{})
	if !errors.Is(err, checkpoint.ErrFingerprint) {
		t.Fatalf("wrong scenario: got %v, want ErrFingerprint", err)
	}
	if errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatal("fingerprint mismatch misreported as corruption")
	}
}

// TestResumeCorruptRejected: a bit-flipped checkpoint fails with the
// CRC error, distinct from the fingerprint error.
func TestResumeCorruptRejected(t *testing.T) {
	spec := ckptSpec("random")
	dir := t.TempDir()
	if _, _, err := Run(context.Background(), spec, Options{
		Checkpoint: &CheckpointConfig{Dir: dir},
	}); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, checkpoint.EpochFileName(2))
	b, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x20
	if err := os.WriteFile(ckpt, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Resume(context.Background(), ckpt, &spec, Options{})
	if !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("corrupt checkpoint: got %v, want ErrCorrupt", err)
	}
	if _, err := InspectCheckpoint(ckpt); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("InspectCheckpoint on corrupt file: got %v, want ErrCorrupt", err)
	}
}

// TestCheckpointedRunOutputUnchanged: enabling checkpointing must not
// perturb the Result in any way.
func TestCheckpointedRunOutputUnchanged(t *testing.T) {
	spec := ckptSpec("skyran")
	spec.Epochs = 2
	plain, _, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ckpted, _, err := Run(context.Background(), spec, Options{
		Checkpoint: &CheckpointConfig{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := MarshalResult(plain)
	b, _ := MarshalResult(ckpted)
	if !bytes.Equal(a, b) {
		t.Fatal("checkpointing changed the run's output")
	}
}
