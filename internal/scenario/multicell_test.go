package scenario

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/fault"
	"repro/internal/traffic"
)

// fleetSpec is the acceptance scenario: a 3-UAV co-channel fleet over
// mobile UEs, aggressive A3 knobs so handovers land inside the short
// serving phases.
func fleetSpec() Spec {
	return Spec{
		Terrain: "FLAT", UEs: 6, Epochs: 2, Seed: 9, ServeS: 10,
		Traffic:              &traffic.Spec{Model: traffic.ModelCBR, RateBps: 4e5},
		Cells:                3,
		Carriers:             "cochannel",
		HandoverHysteresisDB: 1,
		HandoverTTTs:         0.1,
		MobilityMS:           20,
	}
}

func runFleet(t *testing.T, spec Spec, opts Options) ([]byte, *Result) {
	t.Helper()
	res, store, err := Run(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if store != nil {
		t.Fatal("fleet run returned a REM store")
	}
	b, err := MarshalResult(res)
	if err != nil {
		t.Fatal(err)
	}
	return b, res
}

func TestFleetSpecValidation(t *testing.T) {
	bad := []Spec{
		{Cells: -1},
		{Cells: 17},
		{Cells: 2, Carriers: "fdd-7"},
		{Cells: 2, HandoverHysteresisDB: -1},
		{Cells: 2, HandoverTTTs: -0.1},
		{Cells: 2, MobilityMS: -5},
		{Cells: 2, UEs: 500},
		{Carriers: "cochannel"},     // multi-cell knob without cells
		{MobilityMS: 3},             // ditto
		{HandoverHysteresisDB: 0.5}, // ditto
	}
	for _, s := range bad {
		if err := s.Normalize(); err == nil {
			t.Errorf("spec %+v normalized without error", s)
		}
	}
	ok := fleetSpec()
	if err := ok.Normalize(); err != nil {
		t.Fatalf("fleet spec rejected: %v", err)
	}
}

// TestFleetScenarioAcceptance is the issue's acceptance scenario: a
// 3-UAV co-channel fleet with mobile UEs completes at least one
// handover with zero bearer-byte loss, reports per-cell
// SINR/load/fairness rows, and the whole Result is byte-identical
// across worker counts and with an all-zero fault schedule.
func TestFleetScenarioAcceptance(t *testing.T) {
	spec := fleetSpec()
	ref, res := runFleet(t, spec, Options{Workers: 1})

	if res.Controller != "fleet" {
		t.Errorf("controller = %q, want fleet", res.Controller)
	}
	if res.ActiveSessions != spec.UEs {
		t.Errorf("active sessions = %d, want %d", res.ActiveSessions, spec.UEs)
	}
	var successes uint64
	for _, ep := range res.Epochs {
		if len(ep.Cells) != spec.Cells {
			t.Fatalf("epoch %d has %d cell rows, want %d", ep.Epoch, len(ep.Cells), spec.Cells)
		}
		attached := 0
		for _, c := range ep.Cells {
			attached += c.UEs
			if c.UEs > 0 && c.JainFairness <= 0 {
				t.Errorf("epoch %d cell %d: fairness %g with %d UEs", ep.Epoch, c.Cell, c.JainFairness, c.UEs)
			}
		}
		if attached != spec.UEs {
			t.Errorf("epoch %d: cell rows cover %d UEs, want %d", ep.Epoch, attached, spec.UEs)
		}
		if ep.Handover == nil {
			t.Fatalf("epoch %d has no handover report", ep.Epoch)
		}
		successes += ep.Handover.Successes
		if ep.Traffic == nil {
			t.Fatalf("epoch %d has no traffic report", ep.Epoch)
		}
		if ep.Traffic.Summary.JainFairness <= 0 {
			t.Errorf("epoch %d: aggregate fairness %g", ep.Epoch, ep.Traffic.Summary.JainFairness)
		}
		for _, k := range ep.Traffic.KPIs {
			if k.OfferedPackets != k.DeliveredPackets+k.DroppedPackets+uint64(k.BacklogPackets) {
				t.Errorf("epoch %d UE %d leaks packets: offered %d != delivered %d + dropped %d + backlog %d",
					ep.Epoch, k.UE, k.OfferedPackets, k.DeliveredPackets, k.DroppedPackets, k.BacklogPackets)
			}
			if k.Cell < 1 || k.Cell > spec.Cells {
				t.Errorf("epoch %d UE %d on cell %d, want 1..%d", ep.Epoch, k.UE, k.Cell, spec.Cells)
			}
		}
	}
	if successes < 1 {
		t.Errorf("fleet scenario completed no handovers")
	}

	if got, _ := runFleet(t, spec, Options{Workers: 8}); string(got) != string(ref) {
		t.Error("fleet result differs between workers 1 and 8")
	}

	zeroFaults := fleetSpec()
	zeroFaults.Faults = &fault.Schedule{}
	if got, _ := runFleet(t, zeroFaults, Options{Workers: 1}); string(got) != string(ref) {
		t.Error("all-zero fault schedule changed the fleet result")
	}
}

// TestFleetResumeByteIdentical: a fleet run checkpointed mid-run and
// resumed in a fresh environment — mobility cursors, handover
// candidacies, per-cell contexts and all — matches the uninterrupted
// run byte for byte.
func TestFleetResumeByteIdentical(t *testing.T) {
	spec := fleetSpec()
	spec.Epochs = 3
	ref, _ := runFleet(t, spec, Options{Workers: 2})

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, _, err := Run(ctx, spec, Options{
		Workers:    2,
		Checkpoint: &CheckpointConfig{Dir: dir},
		OnEpoch: func(rep EpochReport) {
			if rep.Epoch == 2 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("cancelled run reported no error")
	}
	ckpt := filepath.Join(dir, checkpoint.EpochFileName(2))
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint missing: %v", err)
	}
	meta, err := InspectCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if meta.NextEpoch != 2 || meta.Spec.Cells != spec.Cells {
		t.Fatalf("checkpoint meta %+v", meta)
	}

	res, store, err := Resume(context.Background(), ckpt, &spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if store != nil {
		t.Fatal("fleet resume returned a REM store")
	}
	got, err := MarshalResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(ref) {
		t.Error("resumed fleet result diverged from the uninterrupted run")
	}
}
