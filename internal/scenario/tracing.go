package scenario

import (
	"fmt"

	"repro/internal/traffic"
)

// Trace capture & replay at the scenario level. A capturing run
// records every serving phase's offered workload; a replay run loads
// the trace, proves it belongs to this scenario (fingerprint check
// below), and serves the recorded arrivals instead of generating
// fresh ones — reproducing the original per-UE KPI rows byte for byte.

// setupTracing wires trace capture (Options.RecordTrace) and trace
// replay (Traffic.Mode == "replay") into a freshly built environment.
func setupTracing(env *runEnv, opts Options) error {
	spec := env.spec
	if opts.RecordTrace != "" {
		if spec.Traffic == nil || spec.Traffic.Model == traffic.ModelFullBuffer {
			return fmt.Errorf("scenario: trace capture requires a packet traffic model")
		}
		if spec.Traffic.Mode == traffic.ModeReplay {
			return fmt.Errorf("scenario: cannot record a trace while replaying one")
		}
		if env.mw != nil {
			return fmt.Errorf("scenario: trace capture requires a single-cell run")
		}
		if opts.Checkpoint != nil {
			return fmt.Errorf("scenario: trace capture cannot be combined with checkpointing")
		}
		fp, err := Fingerprint(spec)
		if err != nil {
			return err
		}
		env.w.Capture = traffic.NewCapture(*spec.Traffic, fp)
	}
	if spec.Traffic != nil && spec.Traffic.Mode == traffic.ModeReplay {
		tr, err := LoadReplayTrace(spec)
		if err != nil {
			return err
		}
		env.w.SetReplayTrace(tr)
	}
	return nil
}

// LoadReplayTrace reads the trace a replay spec names and verifies it
// belongs to this scenario: the replay spec with its traffic section
// swapped for the traced one must fingerprint to exactly the capturing
// run's scenario fingerprint — same terrain, UE population, seed,
// faults and knobs, differing only in where the workload comes from.
func LoadReplayTrace(spec Spec) (*traffic.Trace, error) {
	tr, err := traffic.ReadTraceFile(spec.Traffic.TraceFile)
	if err != nil {
		return nil, err
	}
	check := spec
	traced := tr.Spec
	check.Traffic = &traced
	fp, err := Fingerprint(check)
	if err != nil {
		return nil, err
	}
	if fp != tr.Fingerprint {
		return nil, fmt.Errorf("scenario: trace %s was captured from a different scenario (trace fingerprint %016x, this scenario with the traced workload %016x)",
			spec.Traffic.TraceFile, tr.Fingerprint, fp)
	}
	return tr, nil
}
