// Package scenario runs a full SkyRAN scenario end-to-end — build a
// terrain, drop UEs, run controller epochs with UE mobility, score the
// placements — and reports the outcome as plain data. It is the one
// implementation behind both entry points: the skyranctl CLI prints a
// Result (or emits it as JSON with -json), and the skyrand daemon
// serves the very same Result from its job API. Because both paths
// call Run with the same Spec, a job submitted over HTTP is
// byte-identical to the equivalent CLI run.
package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/detrand"
	"repro/internal/enb"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/interference"
	"repro/internal/metrics"
	"repro/internal/rem"
	"repro/internal/sim"
	"repro/internal/terrain"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/ue"
)

// Spec is a scenario description — the same knobs skyranctl exposes as
// flags, in the wire shape the skyrand job API accepts.
type Spec struct {
	// Terrain names a procedural terrain: CAMPUS, RURAL, NYC, LARGE or
	// FLAT.
	Terrain string `json:"terrain"`
	// UEs is the number of ground terminals.
	UEs int `json:"ues"`
	// Topology places the UEs: "uniform" or "clustered".
	Topology string `json:"topology"`
	// Controller selects the placement strategy: skyran, uniform,
	// centroid, random or oracle.
	Controller string `json:"controller"`
	// BudgetM is the measurement budget per epoch in metres.
	BudgetM float64 `json:"budget_m"`
	// Epochs is how many controller epochs to run; half the UEs
	// relocate between epochs.
	Epochs int `json:"epochs"`
	// Seed drives every stochastic element of the scenario.
	Seed int64 `json:"seed"`
	// ServeS is how many seconds of LTE serving to simulate per epoch
	// (0 skips the serving phase).
	ServeS float64 `json:"serve_s"`
	// Traffic selects the serving-phase workload. Nil keeps the
	// pre-traffic-subsystem full-buffer behaviour (byte-identical
	// output); non-nil routes the serving phase through the
	// discrete-event traffic engine and adds per-UE KPIs to each epoch.
	Traffic *traffic.Spec `json:"traffic,omitempty"`
	// Faults declares the fault-injection schedule. Nil — or a schedule
	// with every rate zero, which Normalize nils out — runs fault-free,
	// byte-identical to a spec without the field.
	Faults *fault.Schedule `json:"faults,omitempty"`

	// Cells, when >= 2, runs the cooperative multi-UAV fleet instead of
	// the single-UAV controller loop: one airborne eNodeB per cell on a
	// shared EPC, interference-aware placement, load-aware selection and
	// A3 handovers. 0 (and 1) keep the legacy single-UAV path, and every
	// multi-cell field below is omitted from the wire form when unset,
	// so existing spec fingerprints are unchanged.
	Cells int `json:"cells,omitempty"`
	// Carriers names the fleet carrier plan: "cochannel" (default) or
	// "separate". Only meaningful with Cells >= 2.
	Carriers string `json:"carriers,omitempty"`
	// HandoverHysteresisDB and HandoverTTTs override the A3 hysteresis
	// margin (default 3 dB) and time-to-trigger (default 0.16 s).
	HandoverHysteresisDB float64 `json:"handover_hysteresis_db,omitempty"`
	HandoverTTTs         float64 `json:"handover_ttt_s,omitempty"`
	// MobilityMS, when > 0, gives every UE random-waypoint mobility at
	// this speed (m/s) during serving phases — the workload that makes
	// handovers happen.
	MobilityMS float64 `json:"mobility_ms,omitempty"`
}

// Normalize fills defaults (matching skyranctl's flag defaults, except
// ServeS which stays as given) and validates enumerated fields.
func (s *Spec) Normalize() error {
	if s.Terrain == "" {
		s.Terrain = "CAMPUS"
	}
	if s.UEs <= 0 {
		s.UEs = 6
	}
	if s.Topology == "" {
		s.Topology = "uniform"
	}
	if s.Topology != "uniform" && s.Topology != "clustered" {
		return fmt.Errorf("scenario: unknown topology %q", s.Topology)
	}
	if s.Controller == "" {
		s.Controller = "skyran"
	}
	switch s.Controller {
	case "skyran", "uniform", "centroid", "random", "oracle":
	default:
		return fmt.Errorf("scenario: unknown controller %q", s.Controller)
	}
	if s.BudgetM == 0 {
		s.BudgetM = 800
	}
	if s.BudgetM < 0 {
		return fmt.Errorf("scenario: negative budget %g", s.BudgetM)
	}
	if s.Epochs <= 0 {
		s.Epochs = 1
	}
	if s.Epochs > 100 {
		return fmt.Errorf("scenario: %d epochs exceeds the per-job cap of 100", s.Epochs)
	}
	// Above 200 UEs the per-epoch ground-truth scan and the probing
	// controllers become intractable, so the scale-up regime (up to
	// 20000 UEs, used for traffic stress runs) is only reachable with
	// the random-placement controller.
	if s.UEs > 200 && s.Controller != "random" {
		return fmt.Errorf("scenario: %d UEs exceeds the per-job cap of 200 (controller %q; only \"random\" may scale to 20000)", s.UEs, s.Controller)
	}
	if s.UEs > 20000 {
		return fmt.Errorf("scenario: %d UEs exceeds the scale-up cap of 20000", s.UEs)
	}
	if s.ServeS < 0 || s.ServeS > 600 {
		return fmt.Errorf("scenario: serve_s %g outside [0, 600]", s.ServeS)
	}
	if s.Traffic != nil {
		if err := s.Traffic.Normalize(); err != nil {
			return err
		}
		// Replay feeds one recorded arrival stream through one serving
		// loop; the fleet's per-cell phases have no recorded counterpart.
		if s.Traffic.Mode == traffic.ModeReplay && s.Cells >= 2 {
			return fmt.Errorf("scenario: traffic replay requires a single-cell run (cells = %d)", s.Cells)
		}
	}
	if s.Faults != nil {
		if err := s.Faults.Normalize(); err != nil {
			return err
		}
		// An all-zero schedule is the same as no schedule; drop it so
		// the spec fingerprint, the wire form and the run are all
		// byte-identical to the fault-free ones.
		if !s.Faults.Active() {
			s.Faults = nil
		}
	}
	if s.Cells < 0 {
		return fmt.Errorf("scenario: negative cells %d", s.Cells)
	}
	if s.Cells > 16 {
		return fmt.Errorf("scenario: %d cells exceeds the fleet cap of 16", s.Cells)
	}
	if s.Cells < 2 {
		if s.Carriers != "" || s.HandoverHysteresisDB != 0 || s.HandoverTTTs != 0 || s.MobilityMS != 0 {
			return fmt.Errorf("scenario: carriers/handover/mobility fields require cells >= 2")
		}
		return nil
	}
	if _, err := interference.ParsePlan(s.Carriers); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if s.HandoverHysteresisDB < 0 {
		return fmt.Errorf("scenario: negative handover hysteresis %g dB", s.HandoverHysteresisDB)
	}
	if s.HandoverTTTs < 0 {
		return fmt.Errorf("scenario: negative handover time-to-trigger %g s", s.HandoverTTTs)
	}
	if s.MobilityMS < 0 {
		return fmt.Errorf("scenario: negative mobility speed %g m/s", s.MobilityMS)
	}
	// Fleet placement scores every (cell, UE) pair each descent round;
	// the scale-up population is a single-cell traffic regime.
	if s.UEs > 200 {
		return fmt.Errorf("scenario: %d UEs exceeds the multi-cell cap of 200", s.UEs)
	}
	return nil
}

// TerrainInfo summarises the built terrain.
type TerrainInfo struct {
	Name               string  `json:"name"`
	WidthM             float64 `json:"width_m"`
	HeightM            float64 `json:"height_m"`
	OpenFrac           float64 `json:"open_frac"`
	BuildingFrac       float64 `json:"building_frac"`
	FoliageFrac        float64 `json:"foliage_frac"`
	MaxObstacleHeightM float64 `json:"max_obstacle_height_m"`
}

// UEServed is one UE's serving-phase outcome.
type UEServed struct {
	UE        int     `json:"ue"`
	ServedBps float64 `json:"served_bps"`
}

// CellReport is one fleet cell's per-epoch state: where it hovers, how
// many UEs it serves, the fully-loaded wideband SINR its UEs see from
// it, and — when a serving phase ran — what they got out of it.
type CellReport struct {
	// Cell is 1-based, matching the per-UE KPI column.
	Cell     int       `json:"cell"`
	Position geom.Vec3 `json:"position"`
	UEs      int       `json:"ues"`
	// SINR statistics over the cell's attached UEs (0 when it serves
	// none).
	MinSINRdB  float64 `json:"min_sinr_db"`
	MeanSINRdB float64 `json:"mean_sinr_db"`
	// ServedBps and JainFairness summarise the serving phase across the
	// cell's UEs (0 when Spec.ServeS is 0).
	ServedBps    float64 `json:"served_bps"`
	JainFairness float64 `json:"jain_fairness"`
}

// HandoverReport is one epoch's handover KPI deltas.
type HandoverReport struct {
	Attempts      uint64  `json:"attempts"`
	Successes     uint64  `json:"successes"`
	PingPongs     uint64  `json:"ping_pongs"`
	InterruptionS float64 `json:"interruption_s"`
}

// EpochReport is one controller epoch, scored against ground truth.
type EpochReport struct {
	Epoch     int  `json:"epoch"`
	Relocated bool `json:"relocated"`

	Position       geom.Vec3 `json:"position"`
	ObjectiveValue float64   `json:"objective_value"`
	LocalizationM  float64   `json:"localization_m"`
	MeasurementM   float64   `json:"measurement_m"`
	TotalFlightS   float64   `json:"total_flight_s"`

	// MedianLocErrM is the median UE localization error; nil for
	// controllers that do not localize.
	MedianLocErrM *float64 `json:"median_loc_err_m,omitempty"`

	// Throughput at the chosen position vs the ground-truth optimum in
	// the same altitude plane.
	ThroughputBps      float64   `json:"throughput_bps"`
	OptimalBps         float64   `json:"optimal_bps"`
	OptimalPos         geom.Vec2 `json:"optimal_pos"`
	RelativeThroughput float64   `json:"relative_throughput"`

	// Serving-phase statistics (empty when Spec.ServeS is 0).
	Served             []UEServed `json:"served,omitempty"`
	AggregateServedBps float64    `json:"aggregate_served_bps"`

	// Traffic is the serving-phase KPI report when the scenario ran a
	// traffic workload (Spec.Traffic non-nil).
	Traffic *traffic.Report `json:"traffic,omitempty"`

	// Faults is this epoch's injected-fault and degradation counter
	// deltas; present only when a fault schedule is active and at
	// least one counter moved.
	Faults *fault.Counts `json:"faults,omitempty"`

	// Cells and Handover are the fleet columns, present only on
	// multi-cell runs (Spec.Cells >= 2): per-cell SINR/load/fairness and
	// this epoch's handover KPI deltas.
	Cells    []CellReport    `json:"cells,omitempty"`
	Handover *HandoverReport `json:"handover,omitempty"`

	BatteryFrac float64 `json:"battery_frac"`
	OdometerM   float64 `json:"odometer_m"`
}

// Result is a completed scenario run.
type Result struct {
	Spec           Spec          `json:"spec"`
	Terrain        TerrainInfo   `json:"terrain"`
	Controller     string        `json:"controller"`
	ActiveSessions int           `json:"active_sessions"`
	Epochs         []EpochReport `json:"epochs"`
}

// MarshalResult renders a Result in the canonical wire form — indented
// JSON with a trailing newline. skyranctl -json writes exactly these
// bytes and the skyrand daemon serves exactly these bytes, so the two
// outputs diff clean.
func MarshalResult(r *Result) ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encoding result: %w", err)
	}
	return append(b, '\n'), nil
}

// CheckpointConfig enables epoch-boundary checkpointing of a run.
type CheckpointConfig struct {
	// Dir is the directory checkpoint files are written to (created if
	// missing).
	Dir string
	// EveryEpochs writes a checkpoint after every N completed epochs
	// (default 1).
	EveryEpochs int
	// Retain keeps only the newest N checkpoint files (0 = keep all).
	Retain int
}

// CheckpointEvent describes one written checkpoint (Options.
// OnCheckpoint).
type CheckpointEvent struct {
	// Path is the committed checkpoint file.
	Path string
	// Epoch is the number of completed epochs the file captures.
	Epoch int
	// Bytes is the encoded file size.
	Bytes int64
	// Seconds is how long encoding + committing took.
	Seconds float64
}

// Options tunes a Run beyond the Spec.
type Options struct {
	// Terrain, when non-nil, overrides Spec.Terrain with a pre-built
	// surface (skyranctl's -xyz / -esri paths).
	Terrain *terrain.Surface
	// Tracer, when non-nil, receives the run's flight telemetry.
	Tracer *trace.Recorder
	// OnStart is called once the world is built, with the Result's
	// header fields (Spec, Terrain, ActiveSessions) populated and
	// Epochs still empty.
	OnStart func(*Result)
	// OnEpoch is called after each epoch with its finished report.
	OnEpoch func(EpochReport)
	// Checkpoint, when non-nil, writes epoch-boundary checkpoints the
	// run can later be resumed from. Checkpointing changes nothing
	// about the Result: a checkpointed run and a plain run of the same
	// Spec produce byte-identical output.
	Checkpoint *CheckpointConfig
	// OnCheckpoint is called after each committed checkpoint file.
	OnCheckpoint func(CheckpointEvent)
	// Workers bounds the fleet-placement fan-out on multi-cell runs
	// (0 = one worker per core). It is an execution knob, not part of
	// the Spec, and never changes results.
	Workers int
	// RecordTrace, when non-empty, captures the run's traffic workload
	// (packet arrivals plus phase-start UE positions) into this trace
	// file for later replay via traffic mode "replay". It requires a
	// packet traffic model on a single-cell run without checkpointing;
	// capture never changes the Result.
	RecordTrace string
}

// runEnv is a built scenario: the world (single-UAV or fleet),
// controller and scenario RNG a run (or a resumed run) executes
// against. Exactly one of w and mw is set.
type runEnv struct {
	spec Spec
	rng  *detrand.Rand
	w    *sim.World
	mw   *sim.MultiCell
	ctrl core.Controller
	res  *Result
}

// build constructs the world and controller for an already-normalized
// spec. The scenario RNG has consumed exactly the UE-placement draws
// on return.
func build(spec Spec, opts Options) (*runEnv, error) {
	t := opts.Terrain
	if t == nil {
		t = terrain.ByName(spec.Terrain, uint64(spec.Seed))
		if t == nil {
			return nil, fmt.Errorf("scenario: unknown terrain %q", spec.Terrain)
		}
	}

	rng := detrand.New(spec.Seed)
	var ues []*ue.UE
	if spec.Topology == "clustered" {
		center := ue.PlaceRandomOpen(1, t.Bounds().Inset(40), t.IsOpen, 0, rng.Rand)[0].Pos
		ues = ue.PlaceClustered(spec.UEs, center, t.Bounds().Width()*0.06, t.Bounds(), t.IsOpen, rng.Rand)
	} else {
		area := t.Bounds().Inset(t.Bounds().Width() * 0.08)
		minSep := 15.0
		if spec.UEs > 200 {
			// Dense scale-up populations cannot honour the default 15 m
			// separation; shrink it so the expected packing stays
			// feasible. Small populations keep the exact legacy value
			// (and therefore byte-identical placements).
			minSep = min(15, math.Sqrt(area.Width()*area.Height()/float64(4*spec.UEs)))
		}
		ues = ue.PlaceRandomOpen(spec.UEs, area, t.IsOpen, minSep, rng.Rand)
	}
	if spec.Cells >= 2 {
		return buildFleet(spec, opts, t, rng, ues)
	}
	w, err := sim.New(sim.Config{Terrain: t, Seed: uint64(spec.Seed), FastRanging: true, Faults: spec.Faults}, ues)
	if err != nil {
		return nil, err
	}
	w.Tracer = opts.Tracer
	if opts.Tracer != nil {
		opts.Tracer.Meta(t.Name, spec.Seed)
	}

	ctrl, err := makeController(spec.Controller, spec.BudgetM, spec.Seed)
	if err != nil {
		return nil, err
	}

	st := t.Stats()
	res := &Result{
		Spec: spec,
		Terrain: TerrainInfo{
			Name: t.Name, WidthM: t.Bounds().Width(), HeightM: t.Bounds().Height(),
			OpenFrac: st.OpenFrac, BuildingFrac: st.BuildingFrac, FoliageFrac: st.FoliageFrac,
			MaxObstacleHeightM: st.MaxObstacleHeight,
		},
		Controller:     ctrl.Name(),
		ActiveSessions: w.Core.ActiveSessions(),
	}
	return &runEnv{spec: spec, rng: rng, w: w, ctrl: ctrl, res: res}, nil
}

// buildFleet constructs the multi-cell fleet environment: the carrier
// plan and A3 knobs come from the spec, every UE optionally gets
// random-waypoint mobility, and no single-UAV controller exists — the
// fleet IS the placement strategy.
func buildFleet(spec Spec, opts Options, t *terrain.Surface, rng *detrand.Rand, ues []*ue.UE) (*runEnv, error) {
	plan, err := interference.ParsePlan(spec.Carriers)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	ho := enb.DefaultHandoverConfig()
	if spec.HandoverHysteresisDB > 0 {
		ho.HysteresisDB = spec.HandoverHysteresisDB
	}
	if spec.HandoverTTTs > 0 {
		ho.TTTs = spec.HandoverTTTs
	}
	if spec.MobilityMS > 0 {
		// The same inset the placement uses, so waypoint targets stay in
		// the populated area.
		area := t.Bounds().Inset(t.Bounds().Width() * 0.08)
		for _, u := range ues {
			u.Mobility = ue.NewRandomWaypoint(area, spec.MobilityMS, 0)
		}
	}
	mw, err := sim.NewMultiCell(sim.Config{Terrain: t, Seed: uint64(spec.Seed), FastRanging: true, Faults: spec.Faults},
		spec.Cells, plan, ho, ues, opts.Workers)
	if err != nil {
		return nil, err
	}
	mw.Mobile = spec.MobilityMS > 0
	mw.Tracer = opts.Tracer
	if opts.Tracer != nil {
		opts.Tracer.Meta(t.Name, spec.Seed)
	}
	st := t.Stats()
	res := &Result{
		Spec: spec,
		Terrain: TerrainInfo{
			Name: t.Name, WidthM: t.Bounds().Width(), HeightM: t.Bounds().Height(),
			OpenFrac: st.OpenFrac, BuildingFrac: st.BuildingFrac, FoliageFrac: st.FoliageFrac,
			MaxObstacleHeightM: st.MaxObstacleHeight,
		},
		Controller:     "fleet",
		ActiveSessions: mw.Core.ActiveSessions(),
	}
	return &runEnv{spec: spec, rng: rng, mw: mw, res: res}, nil
}

// Run executes the scenario and returns its Result plus the
// controller's REM store (nil for controllers that keep no store).
// Cancelling ctx aborts between epochs and, for the SkyRAN controller,
// between flight phases; the error then wraps ctx.Err().
func Run(ctx context.Context, spec Spec, opts Options) (*Result, *rem.Store, error) {
	if err := spec.Normalize(); err != nil {
		return nil, nil, err
	}
	env, err := build(spec, opts)
	if err != nil {
		return nil, nil, err
	}
	if err := setupTracing(env, opts); err != nil {
		return nil, nil, err
	}
	if opts.OnStart != nil {
		opts.OnStart(env.res)
	}
	res, store, err := runFrom(ctx, env, len(env.res.Epochs), opts)
	if err == nil && opts.RecordTrace != "" {
		if _, werr := env.w.Capture.Trace.WriteFile(opts.RecordTrace); werr != nil {
			return res, store, fmt.Errorf("scenario: writing trace: %w", werr)
		}
	}
	return res, store, err
}

// runFrom executes epochs startEpoch..spec.Epochs-1 against a built
// (or restored) environment.
func runFrom(ctx context.Context, env *runEnv, startEpoch int, opts Options) (*Result, *rem.Store, error) {
	if env.mw != nil {
		return runFleetFrom(ctx, env, startEpoch, opts)
	}
	spec, w, ctrl, rng, res := env.spec, env.w, env.ctrl, env.rng, env.res
	// Per-epoch fault deltas diff against the counters at loop entry;
	// on a resume the restored injector carries the pre-checkpoint
	// totals, so the first resumed epoch's delta starts from them.
	prevFaults := w.FaultCounts()
	for e := startEpoch; e < spec.Epochs; e++ {
		if err := ctx.Err(); err != nil {
			return res, storeOf(ctrl), fmt.Errorf("scenario: epoch %d: %w", e+1, err)
		}
		relocated := e > 0
		if relocated {
			relocateHalf(w, rng.Rand)
		}
		er, err := core.RunEpochCtx(ctx, ctrl, w)
		if err != nil {
			return res, storeOf(ctrl), fmt.Errorf("scenario: epoch %d: %w", e+1, err)
		}
		rep := EpochReport{
			Epoch:          e + 1,
			Relocated:      relocated,
			Position:       er.Position,
			ObjectiveValue: er.ObjectiveValue,
			LocalizationM:  er.LocalizationM,
			MeasurementM:   er.MeasurementM,
			TotalFlightS:   er.TotalFlightS,
		}
		if len(er.UEEstimates) == len(w.UEs) {
			var errs []float64
			for i, est := range er.UEEstimates {
				errs = append(errs, est.Dist(w.UEs[i].Pos))
			}
			med := metrics.Median(errs)
			rep.MedianLocErrM = &med
		}

		// Quality vs ground truth in the serving plane. The exhaustive
		// grid scan is O(cells × UEs); past the probing-controller cap
		// it would dominate the run, so scale-up populations skip it.
		rep.ThroughputBps = w.AvgThroughputAt(er.Position)
		if len(w.UEs) <= 200 {
			bestPos, bestVal := core.BestPosition(w, er.Position.Z, 5, rem.MaxMean)
			rep.OptimalBps = bestVal
			rep.OptimalPos = bestPos
			rep.RelativeThroughput = metrics.Relative(rep.ThroughputBps, bestVal)
		}

		if spec.ServeS > 0 {
			if spec.Traffic != nil {
				trep, err := w.ServeTraffic(spec.ServeS, 10, *spec.Traffic)
				if err != nil {
					return res, storeOf(ctrl), fmt.Errorf("scenario: epoch %d serving: %w", e+1, err)
				}
				rep.Traffic = trep
				for _, k := range trep.KPIs {
					rep.Served = append(rep.Served, UEServed{UE: k.UE, ServedBps: k.ThroughputBps})
					rep.AggregateServedBps += k.ThroughputBps
				}
			} else {
				bits := w.ServeSeconds(spec.ServeS, 10)
				for i, b := range bits {
					rep.Served = append(rep.Served, UEServed{UE: w.UEs[i].ID, ServedBps: b / spec.ServeS})
					rep.AggregateServedBps += b / spec.ServeS
				}
			}
		}
		rep.BatteryFrac = w.UAV.EnergyFraction()
		rep.OdometerM = w.UAV.OdometerM()
		if spec.Faults != nil {
			now := w.FaultCounts()
			if delta := now.Sub(prevFaults); !delta.IsZero() {
				d := delta
				rep.Faults = &d
				if w.Tracer != nil {
					for _, nc := range delta.NonZero() {
						w.Tracer.Emit(trace.Record{
							Kind: trace.KindFault, T: w.Clock, Epoch: e + 1,
							Fault: nc.Name, Value: float64(nc.N),
						})
					}
				}
			}
			prevFaults = now
		}
		res.Epochs = append(res.Epochs, rep)
		if opts.OnEpoch != nil {
			opts.OnEpoch(rep)
		}
		if cp := opts.Checkpoint; cp != nil {
			every := cp.EveryEpochs
			if every <= 0 {
				every = 1
			}
			if (e+1)%every == 0 {
				if err := writeCheckpoint(env, e+1, cp, opts.OnCheckpoint); err != nil {
					return res, storeOf(ctrl), fmt.Errorf("scenario: epoch %d: %w", e+1, err)
				}
			}
		}
	}
	return res, storeOf(ctrl), nil
}

// runFleetFrom is the multi-cell epoch loop: relocate half the UEs,
// re-place the fleet on the new UE field, reselect cells load-aware,
// serve (with A3 handovers firing mid-phase), and report per-cell
// SINR/load/fairness plus the epoch's handover KPI deltas. Fleet runs
// keep no REM store.
func runFleetFrom(ctx context.Context, env *runEnv, startEpoch int, opts Options) (*Result, *rem.Store, error) {
	spec, m, rng, res := env.spec, env.mw, env.rng, env.res
	// Deltas diff against the counters at loop entry; on a resume the
	// restored injector and handover engine carry the pre-checkpoint
	// totals, so the first resumed epoch's delta starts from them.
	prevFaults := m.FaultCounts()
	prevHO := m.HO.Stats()
	for e := startEpoch; e < spec.Epochs; e++ {
		if err := ctx.Err(); err != nil {
			return res, nil, fmt.Errorf("scenario: epoch %d: %w", e+1, err)
		}
		relocated := e > 0
		if relocated {
			relocateHalfOf(m.Cfg.Terrain, m.UEs, rng.Rand)
		}
		if err := m.PlaceCells(); err != nil {
			return res, nil, fmt.Errorf("scenario: epoch %d placement: %w", e+1, err)
		}
		if err := m.Reselect(); err != nil {
			return res, nil, fmt.Errorf("scenario: epoch %d reselection: %w", e+1, err)
		}
		rep := EpochReport{
			Epoch:          e + 1,
			Relocated:      relocated,
			Position:       m.Graph.Cells[0],
			ObjectiveValue: m.MinSINRdB(),
			ThroughputBps:  m.AvgThroughputBps(),
		}
		if spec.ServeS > 0 {
			if spec.Traffic != nil {
				trep, err := m.ServeTraffic(spec.ServeS, 10, *spec.Traffic)
				if err != nil {
					return res, nil, fmt.Errorf("scenario: epoch %d serving: %w", e+1, err)
				}
				rep.Traffic = trep
				for _, k := range trep.KPIs {
					rep.Served = append(rep.Served, UEServed{UE: k.UE, ServedBps: k.ThroughputBps})
					rep.AggregateServedBps += k.ThroughputBps
				}
			} else {
				bits, err := m.ServeSeconds(spec.ServeS, 10)
				if err != nil {
					return res, nil, fmt.Errorf("scenario: epoch %d serving: %w", e+1, err)
				}
				for i, b := range bits {
					rep.Served = append(rep.Served, UEServed{UE: m.UEs[i].ID, ServedBps: b / spec.ServeS})
					rep.AggregateServedBps += b / spec.ServeS
				}
			}
		}
		rep.Cells = cellReports(m, rep.Served)
		ho := m.HO.Stats()
		rep.Handover = &HandoverReport{
			Attempts:      ho.Attempts - prevHO.Attempts,
			Successes:     ho.Successes - prevHO.Successes,
			PingPongs:     ho.PingPongs - prevHO.PingPongs,
			InterruptionS: ho.InterruptionS - prevHO.InterruptionS,
		}
		prevHO = ho
		if spec.Faults != nil {
			now := m.FaultCounts()
			if delta := now.Sub(prevFaults); !delta.IsZero() {
				d := delta
				rep.Faults = &d
				if m.Tracer != nil {
					for _, nc := range delta.NonZero() {
						m.Tracer.Emit(trace.Record{
							Kind: trace.KindFault, T: m.Clock, Epoch: e + 1,
							Fault: nc.Name, Value: float64(nc.N),
						})
					}
				}
			}
			prevFaults = now
		}
		res.Epochs = append(res.Epochs, rep)
		if opts.OnEpoch != nil {
			opts.OnEpoch(rep)
		}
		if cp := opts.Checkpoint; cp != nil {
			every := cp.EveryEpochs
			if every <= 0 {
				every = 1
			}
			if (e+1)%every == 0 {
				if err := writeCheckpoint(env, e+1, cp, opts.OnCheckpoint); err != nil {
					return res, nil, fmt.Errorf("scenario: epoch %d: %w", e+1, err)
				}
			}
		}
	}
	return res, nil, nil
}

// cellReports summarises each cell for one epoch: position, load,
// fully-loaded wideband SINR over its attached UEs, and (when a serving
// phase ran) the per-cell served rate and its Jain fairness. served is
// rep.Served in UE index order, or nil when no serving phase ran.
func cellReports(m *sim.MultiCell, served []UEServed) []CellReport {
	out := make([]CellReport, m.NCells)
	for c := range out {
		out[c] = CellReport{Cell: c + 1, Position: m.Graph.Cells[c]}
	}
	sums := make([]float64, m.NCells)
	bps := make([][]float64, m.NCells)
	for i, u := range m.UEs {
		c := m.CellOf(i)
		s := m.Graph.WidebandSINRdB(c, u.Pos, nil, 0)
		if out[c].UEs == 0 || s < out[c].MinSINRdB {
			out[c].MinSINRdB = s
		}
		sums[c] += s
		out[c].UEs++
		if i < len(served) {
			bps[c] = append(bps[c], served[i].ServedBps)
			out[c].ServedBps += served[i].ServedBps
		}
	}
	for c := range out {
		if out[c].UEs > 0 {
			out[c].MeanSINRdB = sums[c] / float64(out[c].UEs)
		}
		out[c].JainFairness = traffic.JainIndex(bps[c])
	}
	return out
}

// storeOf exposes the controller's REM store when it keeps one.
func storeOf(ctrl core.Controller) *rem.Store {
	if s, ok := ctrl.(*core.SkyRAN); ok {
		return s.Store()
	}
	return nil
}

func makeController(name string, budget float64, seed int64) (core.Controller, error) {
	switch name {
	case "skyran":
		return core.NewSkyRAN(core.Config{Seed: seed, MeasurementBudgetM: budget}), nil
	case "uniform":
		return &core.Uniform{BudgetM: budget}, nil
	case "centroid":
		return &core.Centroid{Seed: seed}, nil
	case "random":
		return &core.Random{Seed: seed}, nil
	case "oracle":
		return &core.Oracle{}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown controller %q", name)
	}
}

// relocateHalf moves half the UEs to fresh open positions between
// epochs — the paper's dynamic-UE workload.
func relocateHalf(w *sim.World, rng *rand.Rand) {
	relocateHalfOf(w.Terrain, w.UEs, rng)
}

// relocateHalfOf is relocateHalf over any UE population — the fleet
// world shares the exact draw sequence with the legacy path.
func relocateHalfOf(t *terrain.Surface, ues []*ue.UE, rng *rand.Rand) {
	area := t.Bounds().Inset(t.Bounds().Width() * 0.08)
	for i := 0; i < len(ues)/2; i++ {
		idx := rng.Intn(len(ues))
		for try := 0; try < 5000; try++ {
			p := geom.V2(area.MinX+rng.Float64()*area.Width(), area.MinY+rng.Float64()*area.Height())
			if t.IsOpen(p) {
				ues[idx].Pos = p
				break
			}
		}
	}
}
