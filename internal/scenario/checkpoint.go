package scenario

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/detrand"
	"repro/internal/rem"
	"repro/internal/sim"
)

// Scenario checkpointing: at epoch boundaries the full simulation
// state — world, controller, scenario RNG cursor, and the completed
// epoch reports — is written as a checkpoint container. A resumed run
// rebuilds the world from the embedded spec, restores the state, and
// continues; its final Result is byte-identical to an uninterrupted
// run of the same spec, at any worker count, because all randomness is
// captured as (seed, draws) counters and re-derived lazily.

// checkpointPayloadVersion is the payload version written into
// KindCheckpoint containers; bump on any section layout change.
const checkpointPayloadVersion = 1

// Section names inside a KindCheckpoint container. Single-UAV runs
// write "world"; multi-cell runs (Spec.Cells >= 2) write "multiworld"
// instead. Sections are keyed, so old checkpoints — which never carry
// "multiworld" and whose specs never set cells — decode unchanged and
// the payload version stays 1.
const (
	sectionSpec       = "spec"
	sectionProgress   = "progress"
	sectionWorld      = "world"
	sectionMultiWorld = "multiworld"
	sectionController = "controller"
	sectionReports    = "reports"
)

// Fingerprint derives the scenario fingerprint: FNV-64a over the
// canonical (normalized, JSON-encoded) spec. Checkpoint headers carry
// it so a snapshot cannot be restored into a different scenario.
func Fingerprint(spec Spec) (uint64, error) {
	if err := spec.Normalize(); err != nil {
		return 0, err
	}
	b, err := json.Marshal(spec)
	if err != nil {
		return 0, fmt.Errorf("scenario: fingerprinting spec: %w", err)
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64(), nil
}

// progressState is the "progress" section: where to resume and the
// scenario RNG cursor (UE placement + relocation draws).
type progressState struct {
	NextEpoch int
	RNG       detrand.State
}

// controllerState is the "controller" section: which controller kind
// the snapshot belongs to and its state (at most one branch set).
type controllerState struct {
	Kind     string
	SkyRAN   *core.SkyRANState
	Baseline *core.BaselineState
}

// resultState is the "reports" section: the Result header plus every
// completed epoch report, so a resumed run's output includes the
// epochs that ran before the checkpoint.
type resultState struct {
	Terrain        TerrainInfo
	Controller     string
	ActiveSessions int
	Epochs         []EpochReport
}

func gobBytes(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(b []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}

// snapshotController captures the controller state for the spec's
// controller kind.
func snapshotController(spec Spec, ctrl core.Controller) (controllerState, error) {
	cs := controllerState{Kind: spec.Controller}
	switch c := ctrl.(type) {
	case *core.SkyRAN:
		st, err := c.Snapshot()
		if err != nil {
			return cs, err
		}
		cs.SkyRAN = &st
	case *core.Centroid:
		st := c.Snapshot()
		cs.Baseline = &st
	case *core.Random:
		st := c.Snapshot()
		cs.Baseline = &st
	}
	// Uniform and Oracle carry no cross-epoch state.
	return cs, nil
}

// restoreController reinstates a controller snapshot.
func restoreController(ctrl core.Controller, cs controllerState) error {
	switch c := ctrl.(type) {
	case *core.SkyRAN:
		if cs.SkyRAN == nil {
			return fmt.Errorf("scenario: checkpoint has no SkyRAN controller state")
		}
		return c.Restore(*cs.SkyRAN)
	case *core.Centroid:
		if cs.Baseline == nil {
			return fmt.Errorf("scenario: checkpoint has no baseline controller state")
		}
		return c.Restore(*cs.Baseline)
	case *core.Random:
		if cs.Baseline == nil {
			return fmt.Errorf("scenario: checkpoint has no baseline controller state")
		}
		return c.Restore(*cs.Baseline)
	}
	return nil
}

// writeCheckpoint commits a checkpoint capturing the run after
// nextEpoch completed epochs, then applies the retention policy.
func writeCheckpoint(env *runEnv, nextEpoch int, cp *CheckpointConfig, onCheckpoint func(CheckpointEvent)) error {
	started := time.Now()
	fp, err := Fingerprint(env.spec)
	if err != nil {
		return err
	}
	specJSON, err := json.Marshal(env.spec)
	if err != nil {
		return fmt.Errorf("scenario: encoding spec: %w", err)
	}
	progress, err := gobBytes(progressState{NextEpoch: nextEpoch, RNG: env.rng.State()})
	if err != nil {
		return fmt.Errorf("scenario: encoding progress: %w", err)
	}
	worldSection := sectionWorld
	var world []byte
	if env.mw != nil {
		worldSection = sectionMultiWorld
		world, err = gobBytes(env.mw.Snapshot())
	} else {
		world, err = gobBytes(env.w.Snapshot())
	}
	if err != nil {
		return fmt.Errorf("scenario: encoding world: %w", err)
	}
	cs, err := snapshotController(env.spec, env.ctrl)
	if err != nil {
		return fmt.Errorf("scenario: controller snapshot: %w", err)
	}
	ctrlBytes, err := gobBytes(cs)
	if err != nil {
		return fmt.Errorf("scenario: encoding controller: %w", err)
	}
	reports, err := gobBytes(resultState{
		Terrain:        env.res.Terrain,
		Controller:     env.res.Controller,
		ActiveSessions: env.res.ActiveSessions,
		Epochs:         env.res.Epochs,
	})
	if err != nil {
		return fmt.Errorf("scenario: encoding reports: %w", err)
	}

	c := checkpoint.New(checkpoint.KindCheckpoint, checkpointPayloadVersion, fp)
	c.Add(sectionSpec, specJSON)
	c.Add(sectionProgress, progress)
	c.Add(worldSection, world)
	c.Add(sectionController, ctrlBytes)
	c.Add(sectionReports, reports)

	if err := os.MkdirAll(cp.Dir, 0o755); err != nil {
		return fmt.Errorf("scenario: checkpoint dir: %w", err)
	}
	path := filepath.Join(cp.Dir, checkpoint.EpochFileName(nextEpoch))
	n, err := checkpoint.WriteFileAtomic(path, c)
	if err != nil {
		return err
	}
	if err := checkpoint.Prune(cp.Dir, cp.Retain); err != nil {
		return fmt.Errorf("scenario: pruning checkpoints: %w", err)
	}
	if onCheckpoint != nil {
		onCheckpoint(CheckpointEvent{
			Path: path, Epoch: nextEpoch, Bytes: n,
			Seconds: time.Since(started).Seconds(),
		})
	}
	return nil
}

// CheckpointMeta summarizes a verified checkpoint file.
type CheckpointMeta struct {
	Path        string
	Bytes       int64
	Fingerprint uint64
	Spec        Spec
	// NextEpoch is the epoch the run resumes at (== completed epochs).
	NextEpoch int
}

// InspectCheckpoint reads, CRC-verifies and summarizes a checkpoint
// file, without building or restoring anything.
func InspectCheckpoint(path string) (CheckpointMeta, error) {
	meta := CheckpointMeta{Path: path}
	c, err := checkpoint.ReadFile(path)
	if err != nil {
		return meta, err
	}
	if st, err := os.Stat(path); err == nil {
		meta.Bytes = st.Size()
	}
	if c.Kind != checkpoint.KindCheckpoint {
		return meta, fmt.Errorf("%w: %q, want %q", checkpoint.ErrKind, c.Kind, checkpoint.KindCheckpoint)
	}
	meta.Fingerprint = c.Fingerprint
	specJSON, ok := c.Section(sectionSpec)
	if !ok {
		return meta, fmt.Errorf("scenario: checkpoint has no %q section", sectionSpec)
	}
	if err := json.Unmarshal(specJSON, &meta.Spec); err != nil {
		return meta, fmt.Errorf("scenario: decoding checkpoint spec: %w", err)
	}
	var progress progressState
	prog, ok := c.Section(sectionProgress)
	if !ok {
		return meta, fmt.Errorf("scenario: checkpoint has no %q section", sectionProgress)
	}
	if err := gobDecode(prog, &progress); err != nil {
		return meta, fmt.Errorf("scenario: decoding checkpoint progress: %w", err)
	}
	meta.NextEpoch = progress.NextEpoch
	return meta, nil
}

// Resume restores a checkpoint and runs the remaining epochs. When
// expect is non-nil the checkpoint must belong to that scenario
// (fingerprint match) — the error wraps checkpoint.ErrFingerprint
// otherwise, distinct from the CRC errors a damaged file produces. The
// returned Result includes the pre-checkpoint epochs and is
// byte-identical to an uninterrupted run of the same spec.
func Resume(ctx context.Context, path string, expect *Spec, opts Options) (*Result, *rem.Store, error) {
	c, err := checkpoint.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if c.Kind != checkpoint.KindCheckpoint {
		return nil, nil, fmt.Errorf("%w: %q, want %q", checkpoint.ErrKind, c.Kind, checkpoint.KindCheckpoint)
	}
	if c.Version != checkpointPayloadVersion {
		return nil, nil, fmt.Errorf("%w: checkpoint payload version %d, support %d",
			checkpoint.ErrVersion, c.Version, checkpointPayloadVersion)
	}

	section := func(name string) ([]byte, error) {
		b, ok := c.Section(name)
		if !ok {
			return nil, fmt.Errorf("scenario: checkpoint has no %q section", name)
		}
		return b, nil
	}

	specJSON, err := section(sectionSpec)
	if err != nil {
		return nil, nil, err
	}
	var spec Spec
	if err := json.Unmarshal(specJSON, &spec); err != nil {
		return nil, nil, fmt.Errorf("scenario: decoding checkpoint spec: %w", err)
	}
	if err := spec.Normalize(); err != nil {
		return nil, nil, fmt.Errorf("scenario: checkpoint spec: %w", err)
	}
	fp, err := Fingerprint(spec)
	if err != nil {
		return nil, nil, err
	}
	if fp != c.Fingerprint {
		return nil, nil, fmt.Errorf("%w: header %016x, embedded spec %016x",
			checkpoint.ErrFingerprint, c.Fingerprint, fp)
	}
	if expect != nil {
		want, err := Fingerprint(*expect)
		if err != nil {
			return nil, nil, err
		}
		if want != c.Fingerprint {
			return nil, nil, fmt.Errorf("%w: checkpoint is for a different scenario (checkpoint %016x, expected %016x)",
				checkpoint.ErrFingerprint, c.Fingerprint, want)
		}
	}

	var progress progressState
	if b, err := section(sectionProgress); err != nil {
		return nil, nil, err
	} else if err := gobDecode(b, &progress); err != nil {
		return nil, nil, fmt.Errorf("scenario: decoding checkpoint progress: %w", err)
	}
	var worldState sim.WorldState
	var multiState sim.MultiState
	if spec.Cells >= 2 {
		if b, err := section(sectionMultiWorld); err != nil {
			return nil, nil, err
		} else if err := gobDecode(b, &multiState); err != nil {
			return nil, nil, fmt.Errorf("scenario: decoding checkpoint fleet: %w", err)
		}
	} else if b, err := section(sectionWorld); err != nil {
		return nil, nil, err
	} else if err := gobDecode(b, &worldState); err != nil {
		return nil, nil, fmt.Errorf("scenario: decoding checkpoint world: %w", err)
	}
	var cs controllerState
	if b, err := section(sectionController); err != nil {
		return nil, nil, err
	} else if err := gobDecode(b, &cs); err != nil {
		return nil, nil, fmt.Errorf("scenario: decoding checkpoint controller: %w", err)
	}
	var reports resultState
	if b, err := section(sectionReports); err != nil {
		return nil, nil, err
	} else if err := gobDecode(b, &reports); err != nil {
		return nil, nil, fmt.Errorf("scenario: decoding checkpoint reports: %w", err)
	}

	env, err := build(spec, opts)
	if err != nil {
		return nil, nil, err
	}
	if opts.RecordTrace != "" {
		return nil, nil, fmt.Errorf("scenario: trace capture cannot be combined with resume")
	}
	if err := setupTracing(env, opts); err != nil {
		return nil, nil, err
	}
	if err := env.rng.Restore(progress.RNG); err != nil {
		return nil, nil, fmt.Errorf("scenario: restoring scenario RNG: %w", err)
	}
	if env.mw != nil {
		if err := env.mw.Restore(multiState); err != nil {
			return nil, nil, err
		}
	} else {
		if err := env.w.Restore(worldState); err != nil {
			return nil, nil, err
		}
		if err := restoreController(env.ctrl, cs); err != nil {
			return nil, nil, err
		}
	}
	env.res.Terrain = reports.Terrain
	env.res.Controller = reports.Controller
	env.res.ActiveSessions = reports.ActiveSessions
	env.res.Epochs = reports.Epochs

	if opts.OnStart != nil {
		opts.OnStart(env.res)
	}
	return runFrom(ctx, env, progress.NextEpoch, opts)
}
