package scenario

import (
	"math"
	"reflect"
	"testing"
)

func TestCanonicalSeeds(t *testing.T) {
	for _, tc := range []struct {
		name string
		in   []int64
		want []int64
	}{
		{"already-canonical", []int64{1, 2, 3}, []int64{1, 2, 3}},
		{"unsorted", []int64{5, 1, 3}, []int64{1, 3, 5}},
		{"duplicates", []int64{4, 4, 1, 4, 1}, []int64{1, 4}},
		{"single", []int64{9}, []int64{9}},
		{"negative-seeds", []int64{0, -5, 7, -5}, []int64{-5, 0, 7}},
		{"extremes", []int64{math.MaxInt64, math.MinInt64, 0}, []int64{math.MinInt64, 0, math.MaxInt64}},
	} {
		got, err := CanonicalSeeds(tc.in)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: CanonicalSeeds(%v) = %v, want %v", tc.name, tc.in, got, tc.want)
		}
	}
}

func TestCanonicalSeedsEmptyRejected(t *testing.T) {
	if _, err := CanonicalSeeds(nil); err == nil {
		t.Fatal("nil seed set accepted")
	}
	if _, err := CanonicalSeeds([]int64{}); err == nil {
		t.Fatal("empty seed set accepted")
	}
}

func TestCanonicalSeedsDoesNotAliasInput(t *testing.T) {
	in := []int64{3, 1, 2}
	got, err := CanonicalSeeds(in)
	if err != nil {
		t.Fatal(err)
	}
	got[0] = 99
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestShardSpecNormalizeSeedOrder(t *testing.T) {
	base := Spec{Controller: "random", UEs: 3}
	ok := ShardSpec{Spec: base, Seeds: []int64{-2, 0, 5}}
	if err := ok.Normalize(); err != nil {
		t.Fatalf("ascending (negative-first) seeds rejected: %v", err)
	}
	for _, bad := range [][]int64{
		nil,      // empty
		{3, 3},   // duplicate
		{5, 1},   // descending
		{-1, -1}, // duplicate negatives
	} {
		ss := ShardSpec{Spec: base, Seeds: bad}
		if err := ss.Normalize(); err == nil {
			t.Errorf("Normalize accepted seeds %v", bad)
		}
	}
}
