package scenario

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/trace"
)

func flatSpec() Spec {
	return Spec{Terrain: "FLAT", UEs: 3, BudgetM: 200, Epochs: 1, Seed: 7, ServeS: 1}
}

func TestRunDeterministicBytes(t *testing.T) {
	run := func() []byte {
		res, store, err := Run(context.Background(), flatSpec(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if store == nil || store.Len() == 0 {
			t.Fatal("skyran run should leave a populated REM store")
		}
		b, err := MarshalResult(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("identical specs produced different result bytes")
	}
	if !strings.HasSuffix(string(a), "\n") {
		t.Error("canonical wire form should end in a newline")
	}
}

func TestRunEmitsTelemetry(t *testing.T) {
	rec := trace.NewRecorder(nil)
	var kinds []trace.Kind
	rec.Subscribe(func(r trace.Record) { kinds = append(kinds, r.Kind) })
	spec := flatSpec()
	spec.ServeS = 0
	if _, _, err := Run(context.Background(), spec, Options{Tracer: rec}); err != nil {
		t.Fatal(err)
	}
	if len(kinds) == 0 || kinds[0] != trace.KindMeta {
		t.Fatalf("expected telemetry starting with meta, got %v", kinds[:min(len(kinds), 3)])
	}
	var epochs int
	for _, k := range kinds {
		if k == trace.KindEpoch {
			epochs++
		}
	}
	if epochs != 1 {
		t.Errorf("saw %d epoch records, want 1", epochs)
	}
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Run(ctx, flatSpec(), Options{})
	if err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("cancelled run: err = %v", err)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Topology: "ring"},
		{Controller: "magic"},
		{BudgetM: -5},
		{Epochs: 1000},
		{UEs: 10000},
		{ServeS: -1},
	}
	for _, s := range bad {
		if err := s.Normalize(); err == nil {
			t.Errorf("spec %+v should fail validation", s)
		}
	}
	var def Spec
	if err := def.Normalize(); err != nil {
		t.Fatal(err)
	}
	if def.Terrain != "CAMPUS" || def.UEs != 6 || def.Controller != "skyran" ||
		def.Topology != "uniform" || def.BudgetM != 800 || def.Epochs != 1 || def.ServeS != 0 {
		t.Errorf("defaults = %+v", def)
	}
	unknown := Spec{Terrain: "ATLANTIS"}
	if _, _, err := Run(context.Background(), unknown, Options{}); err == nil {
		t.Error("unknown terrain should fail at Run")
	}
}
