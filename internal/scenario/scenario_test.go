package scenario

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/traffic"
)

func flatSpec() Spec {
	return Spec{Terrain: "FLAT", UEs: 3, BudgetM: 200, Epochs: 1, Seed: 7, ServeS: 1}
}

func TestRunDeterministicBytes(t *testing.T) {
	run := func() []byte {
		res, store, err := Run(context.Background(), flatSpec(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if store == nil || store.Len() == 0 {
			t.Fatal("skyran run should leave a populated REM store")
		}
		b, err := MarshalResult(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("identical specs produced different result bytes")
	}
	if !strings.HasSuffix(string(a), "\n") {
		t.Error("canonical wire form should end in a newline")
	}
}

func TestRunEmitsTelemetry(t *testing.T) {
	rec := trace.NewRecorder(nil)
	var kinds []trace.Kind
	rec.Subscribe(func(r trace.Record) { kinds = append(kinds, r.Kind) })
	spec := flatSpec()
	spec.ServeS = 0
	if _, _, err := Run(context.Background(), spec, Options{Tracer: rec}); err != nil {
		t.Fatal(err)
	}
	if len(kinds) == 0 || kinds[0] != trace.KindMeta {
		t.Fatalf("expected telemetry starting with meta, got %v", kinds[:min(len(kinds), 3)])
	}
	var epochs int
	for _, k := range kinds {
		if k == trace.KindEpoch {
			epochs++
		}
	}
	if epochs != 1 {
		t.Errorf("saw %d epoch records, want 1", epochs)
	}
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Run(ctx, flatSpec(), Options{})
	if err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("cancelled run: err = %v", err)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Topology: "ring"},
		{Controller: "magic"},
		{BudgetM: -5},
		{Epochs: 1000},
		{UEs: 10000},
		{ServeS: -1},
	}
	for _, s := range bad {
		if err := s.Normalize(); err == nil {
			t.Errorf("spec %+v should fail validation", s)
		}
	}
	var def Spec
	if err := def.Normalize(); err != nil {
		t.Fatal(err)
	}
	if def.Terrain != "CAMPUS" || def.UEs != 6 || def.Controller != "skyran" ||
		def.Topology != "uniform" || def.BudgetM != 800 || def.Epochs != 1 || def.ServeS != 0 {
		t.Errorf("defaults = %+v", def)
	}
	unknown := Spec{Terrain: "ATLANTIS"}
	if _, _, err := Run(context.Background(), unknown, Options{}); err == nil {
		t.Error("unknown terrain should fail at Run")
	}
}

func TestRunTrafficDeterministicBytes(t *testing.T) {
	spec := flatSpec()
	spec.Epochs = 2
	spec.Traffic = &traffic.Spec{Model: traffic.ModelOnOff, RateBps: 3e6}
	run := func() []byte {
		res, _, err := Run(context.Background(), spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := MarshalResult(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("identical bursty-traffic specs produced different result bytes")
	}
	// The report must carry per-UE KPI rows with traffic actually flowing.
	res, _, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range res.Epochs {
		if ep.Traffic == nil || len(ep.Traffic.KPIs) != spec.UEs {
			t.Fatalf("epoch %d missing traffic KPIs", ep.Epoch)
		}
		if ep.Traffic.Summary.OfferedBytes == 0 {
			t.Fatalf("epoch %d offered no traffic", ep.Epoch)
		}
		if len(ep.Served) != spec.UEs {
			t.Fatalf("epoch %d Served rows = %d", ep.Epoch, len(ep.Served))
		}
	}
	// Different epochs must draw fresh arrival streams.
	if res.Epochs[0].Traffic.Summary.OfferedBytes == res.Epochs[1].Traffic.Summary.OfferedBytes {
		t.Error("both epochs offered byte-identical traffic; per-phase seeding broken")
	}
}

func TestRunTrafficFullBufferMatchesLegacy(t *testing.T) {
	legacy := flatSpec()
	explicit := flatSpec()
	explicit.Traffic = &traffic.Spec{Model: traffic.ModelFullBuffer}
	res1, _, err := Run(context.Background(), legacy, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res2, _, err := Run(context.Background(), explicit, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The serving numbers must agree; only the KPI report is new.
	for i := range res1.Epochs {
		if res1.Epochs[i].AggregateServedBps != res2.Epochs[i].AggregateServedBps {
			t.Fatalf("epoch %d: full-buffer traffic %g != legacy %g", i+1,
				res2.Epochs[i].AggregateServedBps, res1.Epochs[i].AggregateServedBps)
		}
	}
	if res2.Epochs[0].Traffic == nil {
		t.Fatal("explicit full-buffer spec should attach a traffic report")
	}
}

func TestSpecScaleUpRequiresRandomController(t *testing.T) {
	big := Spec{UEs: 5000, Controller: "random"}
	if err := big.Normalize(); err != nil {
		t.Fatalf("random controller should allow 5000 UEs: %v", err)
	}
	tooBig := Spec{UEs: 30000, Controller: "random"}
	if err := tooBig.Normalize(); err == nil {
		t.Error("30000 UEs should exceed the scale-up cap")
	}
	bad := Spec{UEs: 5000, Controller: "skyran"}
	if err := bad.Normalize(); err == nil {
		t.Error("probing controller should stay capped at 200 UEs")
	}
	badTraffic := Spec{Traffic: &traffic.Spec{Model: "warp-drive"}}
	if err := badTraffic.Normalize(); err == nil {
		t.Error("invalid traffic spec should fail scenario validation")
	}
}
