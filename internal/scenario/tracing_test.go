package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/traffic"
)

// cohortSpec is the multi-cohort acceptance workload: three traffic
// classes on dedicated streams — heavy-tailed gamma, weibull, and a
// diurnal+flash poisson cohort — over a mobile fleet.
func cohortTraffic() *traffic.Spec {
	return &traffic.Spec{
		Model: traffic.ModelPoisson, RateBps: 3e5,
		Cohorts: []traffic.Cohort{
			{Name: "bulk", Share: 0.5, Model: traffic.ModelGamma, Shape: 0.4},
			{Name: "iot", Share: 0.2, Model: traffic.ModelWeibull, Shape: 0.7, RateBps: 5e4},
			{Name: "crowd", Share: 0.3,
				Diurnal: []traffic.Period{{Seconds: 3, Mult: 0.5}, {Seconds: 3, Mult: 2}},
				Flash:   &traffic.Flash{AtS: 2, Peak: 4, RampS: 1, HoldS: 2, DecayS: 1}},
		},
	}
}

// TestCohortFleetByteIdenticalAcrossWorkers is the cohort determinism
// contract at the fleet layer: gamma, weibull and enveloped streams
// are byte-identical at workers 1 vs 8.
func TestCohortFleetByteIdenticalAcrossWorkers(t *testing.T) {
	spec := Spec{
		Terrain: "FLAT", UEs: 8, Epochs: 2, Seed: 11, ServeS: 5,
		Traffic: cohortTraffic(),
		Cells:   2, MobilityMS: 15, HandoverHysteresisDB: 1, HandoverTTTs: 0.1,
	}
	ref, _ := runFleet(t, spec, Options{Workers: 1})
	got, _ := runFleet(t, spec, Options{Workers: 8})
	if !bytes.Equal(ref, got) {
		t.Fatal("cohort fleet result differs between workers 1 and 8")
	}
}

// TestCohortResumeByteIdentical checkpoints a cohort run mid-sweep and
// resumes it: the per-phase (seed, phase, cohort, UE) stream derivation
// must survive the world rebuild.
func TestCohortResumeByteIdentical(t *testing.T) {
	spec := Spec{
		Terrain: "FLAT", UEs: 6, Controller: "random",
		BudgetM: 200, Epochs: 4, Seed: 13, ServeS: 2,
		Traffic: cohortTraffic(),
	}
	ref, _, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := MarshalResult(ref)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var last string
	_, _, err = Run(ctx, spec, Options{
		Checkpoint: &CheckpointConfig{Dir: dir},
		OnEpoch: func(rep EpochReport) {
			if rep.Epoch == 2 {
				cancel()
			}
		},
		OnCheckpoint: func(ev CheckpointEvent) { last = ev.Path },
	})
	if err == nil {
		t.Fatal("cancelled run reported no error")
	}
	got, _, err := Resume(context.Background(), last, &spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := MarshalResult(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refJSON, gotJSON) {
		t.Fatal("resumed cohort run differs from uninterrupted run")
	}
}

// traceSpec is the capture/replay scenario: packet traffic under an
// active fault schedule (so replay must reproduce fault handling too).
func traceSpec() Spec {
	return Spec{
		Terrain: "FLAT", UEs: 4, Controller: "random",
		BudgetM: 200, Epochs: 2, Seed: 21, ServeS: 2,
		Traffic: &traffic.Spec{Model: traffic.ModelPoisson, RateBps: 2e5},
		Faults:  &fault.Schedule{GTPULossRate: 0.05},
	}
}

// TestTraceCaptureReplayByteIdentical is the acceptance contract: a
// captured trace replayed via traffic mode "replay" reproduces the
// original run's per-UE KPI rows byte for byte — and capturing never
// changes the capturing run itself.
func TestTraceCaptureReplayByteIdentical(t *testing.T) {
	spec := traceSpec()
	plain, _, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plainJSON, err := MarshalResult(plain)
	if err != nil {
		t.Fatal(err)
	}

	trace := filepath.Join(t.TempDir(), "run.trace")
	captured, _, err := Run(context.Background(), spec, Options{RecordTrace: trace})
	if err != nil {
		t.Fatal(err)
	}
	capturedJSON, err := MarshalResult(captured)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plainJSON, capturedJSON) {
		t.Fatal("capturing changed the run")
	}

	replay := spec
	replay.Traffic = &traffic.Spec{Mode: traffic.ModeReplay, TraceFile: trace}
	replayed, _, err := Run(context.Background(), replay, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed.Epochs) != len(captured.Epochs) {
		t.Fatalf("replay ran %d epochs, capture ran %d", len(replayed.Epochs), len(captured.Epochs))
	}
	for i := range captured.Epochs {
		want, err := json.Marshal(captured.Epochs[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(replayed.Epochs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("epoch %d differs under replay:\n--- captured ---\n%s\n--- replayed ---\n%s", i+1, want, got)
		}
	}
}

func TestReplayWrongScenarioRejected(t *testing.T) {
	spec := traceSpec()
	trace := filepath.Join(t.TempDir(), "run.trace")
	if _, _, err := Run(context.Background(), spec, Options{RecordTrace: trace}); err != nil {
		t.Fatal(err)
	}
	wrong := spec
	wrong.Seed = 22
	wrong.Traffic = &traffic.Spec{Mode: traffic.ModeReplay, TraceFile: trace}
	if _, _, err := Run(context.Background(), wrong, Options{}); err == nil {
		t.Fatal("replay into a different scenario accepted")
	}
	// The matching scenario must still load.
	right := spec
	right.Traffic = &traffic.Spec{Mode: traffic.ModeReplay, TraceFile: trace}
	if _, _, err := Run(context.Background(), right, Options{}); err != nil {
		t.Fatalf("replay into the capturing scenario rejected: %v", err)
	}
}

func TestRecordTraceValidation(t *testing.T) {
	ctx := context.Background()
	trace := filepath.Join(t.TempDir(), "t.trace")

	fullBuffer := traceSpec()
	fullBuffer.Traffic = nil
	if _, _, err := Run(ctx, fullBuffer, Options{RecordTrace: trace}); err == nil {
		t.Fatal("capture without a packet model accepted")
	}

	multi := traceSpec()
	multi.Cells = 2
	if _, _, err := Run(ctx, multi, Options{RecordTrace: trace}); err == nil {
		t.Fatal("capture on a fleet run accepted")
	}

	withCkpt := traceSpec()
	if _, _, err := Run(ctx, withCkpt, Options{
		RecordTrace: trace,
		Checkpoint:  &CheckpointConfig{Dir: t.TempDir()},
	}); err == nil {
		t.Fatal("capture combined with checkpointing accepted")
	}

	replayCells := traceSpec()
	replayCells.Cells = 2
	replayCells.Traffic = &traffic.Spec{Mode: traffic.ModeReplay, TraceFile: trace}
	if err := replayCells.Normalize(); err == nil {
		t.Fatal("replay on a fleet run accepted")
	}
}
