package scenario

import (
	"fmt"
	"path/filepath"
	"sort"
)

// Campaign sharding: a campaign is one scenario spec template fanned
// out over a Monte-Carlo seed range. The cluster coordinator splits the
// range into shards and dispatches each shard to a skyrand worker
// daemon, which fans it into one ordinary job per seed. Because every
// per-seed Result is canonical (scenario.MarshalResult bytes) and the
// coordinator merges them in ascending seed order — with sector order
// inside each result already pinned by core.Fleet's sector-order
// merge — the merged campaign output is byte-identical at any topology.

// MaxShardSeeds caps the seeds one shard may carry; a shard is a
// dispatch unit, not a buffer, and anything past this is junk or abuse.
const MaxShardSeeds = 4096

// ShardSpec is the wire form of one campaign shard: a spec template
// plus the seed range this worker runs. The template's own Seed is
// ignored — each listed seed becomes one sub-job via SpecForSeed.
type ShardSpec struct {
	Spec  Spec    `json:"spec"`
	Seeds []int64 `json:"seeds"`
	// CheckpointDir, when set, roots this shard's sub-job checkpoints:
	// the sub-job for seed s checkpoints to SeedCheckpointDir(dir, s)
	// and, before running, resumes from the newest intact checkpoint
	// found there. On a shared filesystem this is what makes a restolen
	// shard (re-dispatched after its worker was evicted) continue from
	// where the dead worker left off, byte-identically.
	CheckpointDir string `json:"checkpoint_dir,omitempty"`
	// IdemSalt namespaces the per-seed idempotency keys the worker
	// derives (typically the campaign ID), so re-dispatching the same
	// shard to the same worker replays its existing sub-jobs instead of
	// double-running them, while distinct campaigns over the same
	// template never share jobs.
	IdemSalt string `json:"idem_salt,omitempty"`
}

// Normalize validates the shard: a normalizable template and a
// non-empty, strictly ascending seed list (ascending order is what
// makes the merge key canonical).
func (ss *ShardSpec) Normalize() error {
	if err := ss.Spec.Normalize(); err != nil {
		return err
	}
	if len(ss.Seeds) == 0 {
		return fmt.Errorf("scenario: shard carries no seeds")
	}
	if len(ss.Seeds) > MaxShardSeeds {
		return fmt.Errorf("scenario: shard carries %d seeds, cap is %d", len(ss.Seeds), MaxShardSeeds)
	}
	for i := 1; i < len(ss.Seeds); i++ {
		if ss.Seeds[i] <= ss.Seeds[i-1] {
			return fmt.Errorf("scenario: shard seeds must be strictly ascending (seed[%d]=%d after %d)",
				i, ss.Seeds[i], ss.Seeds[i-1])
		}
	}
	return nil
}

// CanonicalSeeds returns the canonical form of a Monte-Carlo seed
// set: sorted ascending with duplicates removed, never sharing memory
// with the input. Campaign results are keyed by seed, so submission
// order and repetition never matter; canonicalizing up front is what
// makes the merged campaign document deterministic. An empty set is an
// error — a campaign with no seeds runs nothing.
func CanonicalSeeds(seeds []int64) ([]int64, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("scenario: seed set is empty")
	}
	sorted := append([]int64(nil), seeds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	uniq := sorted[:1]
	for _, s := range sorted[1:] {
		if s != uniq[len(uniq)-1] {
			uniq = append(uniq, s)
		}
	}
	return uniq, nil
}

// SpecForSeed restricts a campaign template to one Monte-Carlo seed:
// the returned spec is the template with its Seed replaced.
func SpecForSeed(template Spec, seed int64) Spec {
	template.Seed = seed
	return template
}

// CampaignFingerprint fingerprints a campaign template with its seed
// zeroed, so every shard of one campaign — whatever seed range it
// carries — maps to the same value. The cluster's scenario-affinity
// router keys on it: shards of one campaign land on one worker, whose
// obstruction/REM caches and checkpoint directory stay warm for them.
func CampaignFingerprint(spec Spec) (uint64, error) {
	spec.Seed = 0
	return Fingerprint(spec)
}

// SeedCheckpointDir is the per-seed checkpoint directory under a shard
// checkpoint root.
func SeedCheckpointDir(root string, seed int64) string {
	return filepath.Join(root, fmt.Sprintf("seed-%d", seed))
}
