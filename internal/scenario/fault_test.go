package scenario

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/fault"
	"repro/internal/traffic"
)

func faultSpec() Spec {
	s := ckptSpec("skyran")
	s.Faults = &fault.Schedule{
		SRSDropRate:    0.25,
		SRSOutlierRate: 0.15,
		GTPULossRate:   0.1,
		GTPUDupRate:    0.05,
		UEChurnRate:    0.3,
		GPSDriftM:      2,
		BatterySagFrac: 0.1,
		LegAbortRate:   0.2,
	}
	return s
}

func runBytes(t *testing.T, spec Spec) []byte {
	t.Helper()
	res, _, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalResult(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestZeroFaultScheduleByteIdentical is the zero ≡ nil contract: a
// spec carrying an all-zero fault schedule must produce output
// byte-identical to a spec with no schedule at all — the injector is
// never built and no RNG draw is perturbed.
func TestZeroFaultScheduleByteIdentical(t *testing.T) {
	plain := ckptSpec("skyran")
	zeroed := ckptSpec("skyran")
	zeroed.Faults = &fault.Schedule{}
	a := runBytes(t, plain)
	b := runBytes(t, zeroed)
	if !bytes.Equal(a, b) {
		t.Fatal("all-zero fault schedule changed the run's output")
	}
	if err := zeroed.Normalize(); err != nil {
		t.Fatal(err)
	}
	if zeroed.Faults != nil {
		t.Error("Normalize should nil out an inactive fault schedule")
	}
}

// TestFaultRunDeterministicBytes: an aggressive schedule is still
// byte-reproducible, and its epochs actually report fault activity.
func TestFaultRunDeterministicBytes(t *testing.T) {
	a := runBytes(t, faultSpec())
	b := runBytes(t, faultSpec())
	if !bytes.Equal(a, b) {
		t.Fatal("identical fault schedules produced different result bytes")
	}
	res, _, err := Run(context.Background(), faultSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var active int
	for _, ep := range res.Epochs {
		if ep.Faults != nil && !ep.Faults.IsZero() {
			active++
		}
	}
	if active == 0 {
		t.Fatal("aggressive schedule injected nothing across all epochs")
	}
}

// TestFaultResumeByteIdentical extends the checkpoint contract to
// fault injection: kill after epoch 2, resume in a fresh world, and
// the output — including the injector's RNG streams and GPS bias —
// must match the uninterrupted faulty run byte for byte.
func TestFaultResumeByteIdentical(t *testing.T) {
	spec := faultSpec()
	ref := runBytes(t, spec)

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, _, err := Run(ctx, spec, Options{
		Checkpoint: &CheckpointConfig{Dir: dir},
		OnEpoch: func(rep EpochReport) {
			if rep.Epoch == 2 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("cancelled run reported no error")
	}
	ckpt := filepath.Join(dir, checkpoint.EpochFileName(2))
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint missing: %v", err)
	}
	got, _, err := Resume(context.Background(), ckpt, &spec, Options{})
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	gotJSON, err := MarshalResult(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, gotJSON) {
		t.Fatal("resumed faulty run differs from uninterrupted run")
	}
}

// TestFaultDegradationBounded is the graceful-degradation acceptance
// check: under 20% SRS dropout plus heavy-tailed outliers the SkyRAN
// controller still completes every epoch and the chosen placements
// stay within a bounded throughput regression of the fault-free run.
func TestFaultDegradationBounded(t *testing.T) {
	clean := ckptSpec("skyran")
	clean.Traffic = nil
	degraded := clean
	degraded.Faults = &fault.Schedule{SRSDropRate: 0.2, SRSOutlierRate: 0.1}

	cleanRes, _, err := Run(context.Background(), clean, Options{})
	if err != nil {
		t.Fatal(err)
	}
	degRes, _, err := Run(context.Background(), degraded, Options{})
	if err != nil {
		t.Fatalf("degraded run failed outright: %v", err)
	}
	if len(degRes.Epochs) != len(cleanRes.Epochs) {
		t.Fatalf("degraded run completed %d/%d epochs", len(degRes.Epochs), len(cleanRes.Epochs))
	}
	var cleanSum, degSum float64
	for i := range cleanRes.Epochs {
		cleanSum += cleanRes.Epochs[i].RelativeThroughput
		degSum += degRes.Epochs[i].RelativeThroughput
	}
	cleanMean := cleanSum / float64(len(cleanRes.Epochs))
	degMean := degSum / float64(len(degRes.Epochs))
	// The robust pipeline must keep the mean relative throughput within
	// 25 percentage points of fault-free despite losing a fifth of the
	// ranging measurements.
	if degMean < cleanMean-0.25 {
		t.Errorf("degraded mean relative throughput %.3f vs clean %.3f: regression unbounded",
			degMean, cleanMean)
	}

	var drops uint64
	for _, ep := range degRes.Epochs {
		if ep.Faults != nil {
			drops += ep.Faults.SRSDrops + ep.Faults.SRSOutliers
		}
	}
	if drops == 0 {
		t.Error("degradation test injected no SRS faults")
	}
}

// Churn and GTPU loss must surface in the traffic KPI report as the
// fault-dropped / duplicated splits, and loss accounting must include
// the injected drops.
func TestFaultTrafficKPISurfaced(t *testing.T) {
	spec := faultSpec()
	spec.Traffic = &traffic.Spec{Model: traffic.ModelOnOff, RateBps: 3e6}
	res, _, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var faultBytes, dupBytes uint64
	for _, ep := range res.Epochs {
		if ep.Traffic == nil {
			t.Fatalf("epoch %d missing traffic report", ep.Epoch)
		}
		faultBytes += ep.Traffic.Summary.FaultDroppedBytes
		dupBytes += ep.Traffic.Summary.DuplicatedBytes
	}
	if faultBytes == 0 {
		t.Error("10% GTPU loss + churn surfaced no fault-dropped bytes")
	}
	if dupBytes == 0 {
		t.Error("5% GTPU duplication surfaced no duplicated bytes")
	}
}
