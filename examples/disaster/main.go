// Disaster relief: the paper's motivating deployment (§1) — fixed
// infrastructure is down over a rural area and a SkyRAN UAV is flown
// in to restore connectivity. The example compares SkyRAN against the
// Centroid and Uniform baselines on the same scenario and shows the
// battery cost of each strategy's probing.
package main

import (
	"fmt"
	"log"

	skyran "repro"
)

func main() {
	fmt.Println("== Rural disaster-relief deployment (250 m x 250 m, 8 UEs) ==")

	type entry struct {
		name string
		make func(seed int64) skyran.Controller
	}
	strategies := []entry{
		{"SkyRAN", func(seed int64) skyran.Controller {
			return skyran.NewController(skyran.ControllerConfig{Budget: 900, Seed: seed})
		}},
		{"Uniform", func(int64) skyran.Controller { return skyran.NewUniformBaseline(900) }},
		{"Centroid", func(seed int64) skyran.Controller { return skyran.NewCentroidBaseline(seed) }},
	}

	for _, st := range strategies {
		// Fresh scenario per strategy so probing flights do not share
		// battery or UE state.
		sc, err := skyran.NewScenario(skyran.ScenarioConfig{
			Terrain: "RURAL",
			UEs:     8,
			Seed:    7,
		})
		if err != nil {
			log.Fatal(err)
		}
		ctrl := st.make(7)
		res, err := ctrl.RunEpoch(sc.World)
		if err != nil {
			log.Fatal(err)
		}
		rel := sc.RelativeThroughput(res.Position)
		fmt.Printf("%-9s placed at %-22s rel-throughput %.2f  probing %5.0f m  battery left %.0f%%\n",
			st.name, res.Position.String(), rel,
			res.LocalizationM+res.MeasurementM, 100*sc.World.UAV.EnergyFraction())
	}

	fmt.Println("\nOn flat rural terrain every strategy converges near the optimum —")
	fmt.Println("exactly the paper's Fig 29 (parity on RURAL): when shadowing is mild,")
	fmt.Println("cheap geometry is enough and Centroid's near-zero probing wins on")
	fmt.Println("battery. Complex terrain flips this — see examples/stadium (clustered")
	fmt.Println("hotspot) and examples/urban (street canyons), where REM-guided probing")
	fmt.Println("is what buys the throughput.")
}
