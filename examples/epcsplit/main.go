// EPC split deployment: the paper co-locates eNodeB and EPC on two
// onboard computers linked by Ethernet (§4.1); a future variant could
// keep the EPC on the ground behind the backhaul. This example runs
// the S1AP-lite control plane over a real TCP connection — attach,
// authentication, bearer setup — then pushes downlink traffic through
// the GTP-U tunnel into the scheduler-driven bearer queue, exactly the
// path a split deployment would use.
package main

import (
	"fmt"
	"log"
	"net"

	"repro/internal/enb"
	"repro/internal/epc"
	"repro/internal/ltephy"
)

func main() {
	// Ground side: HSS + collapsed core listening on TCP.
	hss := epc.NewHSS()
	var key [16]byte
	copy(key[:], "skyran-demo-key!")
	hss.Provision(epc.Subscriber{IMSI: "001017331200001", Key: key, QoSClass: 9})
	core := epc.NewCore(hss)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if err := core.ServeS1(epc.NewS1Conn(conn), 1); err != nil {
			log.Println("core S1:", err)
		}
	}()

	// Airborne side: dial the S1 link and attach a UE end-to-end.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	s1 := epc.NewS1Conn(conn)
	teid, ip, err := epc.AttachOverS1(s1, "001017331200001", key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attach over TCP S1: TEID=%d, UE IP=%s\n", teid, ip)

	// Bearer: core encapsulates downlink IP packets into GTP-U; the
	// eNodeB queues them and the scheduler's per-TTI grants drain them.
	bearer := enb.NewBearer(&epc.Session{IMSI: "001017331200001", TEID: teid, IP: ip})
	coreTunnel := epc.NewTunnel(teid)

	num := ltephy.LTE10MHz()
	const snrDB = 14.0 // a mid-cell link
	perTTIBits := num.ThroughputBps(snrDB) / 1000

	// 40 packets of 1200 B arrive from the internet.
	for i := 0; i < 40; i++ {
		pkt := make([]byte, 1200)
		pkt[0] = byte(i)
		if err := bearer.DeliverGTPU(coreTunnel.Encap(pkt)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("queued %d packets (%d B each) for a CQI-%d link, %d bits/TTI\n",
		bearer.QueuedPackets(), 1200, ltephy.CQIForSNR(snrDB), int(perTTIBits))

	// Run TTIs until the queue drains.
	ttis := 0
	for bearer.QueuedPackets() > 0 && ttis < 10000 {
		bearer.Credit(perTTIBits)
		ttis++
	}
	fmt.Printf("drained in %d TTIs (%.1f ms) -> %.1f Mbps effective\n",
		ttis, float64(ttis), float64(bearer.DeliveredBytes)*8/float64(ttis)/1000)
	fmt.Printf("delivered %d packets, %d bytes; tunnel tx=%d rx=%d\n",
		bearer.DeliveredPackets, bearer.DeliveredBytes,
		coreTunnel.TxPackets, bearer.Tunnel().RxPackets)
}
