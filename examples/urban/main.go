// Urban multi-epoch operation: a SkyRAN UAV serves a Manhattan-style
// canyon grid while UEs wander. The dynamic epoch trigger (§3.5)
// decides when aggregate performance has degraded enough to justify a
// new probing flight, and the REM store keeps re-probing cheap for
// UEs that return to previously mapped spots.
package main

import (
	"fmt"
	"log"

	skyran "repro"
)

func main() {
	fmt.Println("== Dense-urban multi-epoch run (NYC, 6 mobile UEs) ==")

	sc, err := skyran.NewScenario(skyran.ScenarioConfig{
		Terrain:        "NYC",
		UEs:            6,
		Seed:           11,
		StreetMobility: true, // pedestrians following the street grid
	})
	if err != nil {
		log.Fatal(err)
	}
	ctrl := skyran.NewController(skyran.ControllerConfig{Budget: 600, Altitude: 60, Seed: 11})

	const horizonMin = 30
	served := 0.0
	epochs := 0
	for minute := 0; minute < horizonMin; {
		if ctrl.ShouldTrigger(sc.World) {
			res, err := ctrl.RunEpoch(sc.World)
			if err != nil {
				log.Fatal(err)
			}
			epochs++
			fmt.Printf("t=%2d min: epoch %d -> %s (probing %.0f m, store holds %d REMs)\n",
				minute, epochs, res.Position, res.LocalizationM+res.MeasurementM, ctrl.Store().Len())
			// Probing costs flight time.
			minute += int(res.TotalFlightS/60) + 1
			continue
		}
		// Serve for one minute of simulated time while UEs walk.
		bits := sc.World.ServeSeconds(10, 10) // 10 s of scheduler, scaled
		var total float64
		for _, b := range bits {
			total += b
		}
		served += total * 6 // extrapolate the 10 s sample to the minute
		sc.World.Step(50)   // remaining wall-clock: UEs keep moving
		minute++
		if minute%5 == 0 {
			rel := sc.RelativeThroughput(sc.World.UAV.Position())
			fmt.Printf("t=%2d min: serving, relative throughput now %.2f\n", minute, rel)
		}
	}
	fmt.Printf("\n%d epochs over %d minutes; %.1f Gbit served; battery %.0f%% left\n",
		epochs, horizonMin, served/1e9, 100*sc.World.UAV.EnergyFraction())
	fmt.Println("paper Fig 12: a 10% degradation trigger yields ~10 min epochs.")
}
