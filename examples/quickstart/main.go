// Quickstart: run one SkyRAN epoch on the campus testbed and print
// where the UAV decided to serve from, how much probing it cost, and
// how close to optimal the placement is.
package main

import (
	"fmt"
	"log"

	skyran "repro"
)

func main() {
	// A 300 m × 300 m campus with 6 UEs on open ground.
	sc, err := skyran.NewScenario(skyran.ScenarioConfig{
		Terrain: "CAMPUS",
		UEs:     6,
		Seed:    42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The SkyRAN controller: localization flight → altitude search →
	// gradient-guided measurement flight → REM estimation → max-min
	// placement.
	ctrl := skyran.NewController(skyran.ControllerConfig{Budget: 800, Seed: 42})
	res, err := ctrl.RunEpoch(sc.World)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("serving position: %s (target altitude %.0f m)\n", res.Position, ctrl.TargetAltitude())
	fmt.Printf("probing cost: %.0f m localization + %.0f m measurement = %.0f s of flight\n",
		res.LocalizationM, res.MeasurementM, res.TotalFlightS)

	errs := sc.LocalizationErrors(res.UEEstimates)
	fmt.Printf("localization errors (m):")
	for _, e := range errs {
		fmt.Printf(" %.1f", e)
	}
	fmt.Println()

	rel := sc.RelativeThroughput(res.Position)
	fmt.Printf("relative throughput vs ground-truth optimum: %.2f (paper: 0.90-0.95)\n", rel)

	// Serve traffic for a few seconds through the onboard LTE stack.
	bits := sc.World.ServeSeconds(3, 10)
	var total float64
	for i, b := range bits {
		fmt.Printf("UE%d served %.1f Mbps\n", sc.World.UEs[i].ID, b/3/1e6)
		total += b
	}
	fmt.Printf("cell aggregate: %.1f Mbps\n", total/3/1e6)
}
