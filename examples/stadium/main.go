// Stadium hotspot: the paper's capacity-augmentation use case (§1) —
// a dense pocket of users (topology B, Fig 22b) needs a temporary
// cell. Clustered UEs are exactly where the Uniform baseline wastes
// its budget and SkyRAN's location-aware probing shines; the example
// sweeps the measurement budget to reproduce the Fig 23b crossover,
// then demonstrates the LTE scheduler policies over the chosen cell.
package main

import (
	"fmt"
	"log"

	skyran "repro"
)

func main() {
	fmt.Println("== Stadium hotspot (CAMPUS terrain, 7 clustered UEs) ==")
	fmt.Println("budget_m  skyran_rel  uniform_rel")
	for _, budget := range []float64{200, 400, 800} {
		sky := runOnce(budget, true)
		uni := runOnce(budget, false)
		fmt.Printf("%7.0f   %9.2f   %10.2f\n", budget, sky, uni)
	}
	fmt.Println("\npaper Fig 23b: SkyRAN ≈2x Uniform at small budgets on the")
	fmt.Println("clustered topology, approaching 0.95 with budget.")

	// Serve the hotspot and compare scheduler fairness.
	sc, err := skyran.NewScenario(skyran.ScenarioConfig{
		Terrain: "CAMPUS", UEs: 7, Clustered: true, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctrl := skyran.NewController(skyran.ControllerConfig{Budget: 800, Seed: 3})
	res, err := ctrl.RunEpoch(sc.World)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserving the cluster from %s for 5 s:\n", res.Position)
	bits := sc.World.ServeSeconds(5, 10)
	var minR, maxR float64
	for i, b := range bits {
		r := b / 5 / 1e6
		if i == 0 || r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
		fmt.Printf("  UE%d: %.1f Mbps\n", sc.World.UEs[i].ID, r)
	}
	fmt.Printf("round-robin fairness spread: %.1f-%.1f Mbps\n", minR, maxR)
}

func runOnce(budget float64, useSkyRAN bool) float64 {
	sc, err := skyran.NewScenario(skyran.ScenarioConfig{
		Terrain: "CAMPUS", UEs: 7, Clustered: true, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	var ctrl skyran.Controller
	if useSkyRAN {
		ctrl = skyran.NewController(skyran.ControllerConfig{Budget: budget, Altitude: 35, Seed: 3})
	} else {
		ctrl = skyran.NewUniformBaselineAt(budget, 35)
	}
	res, err := ctrl.RunEpoch(sc.World)
	if err != nil {
		log.Fatal(err)
	}
	return sc.RelativeThroughput(res.Position)
}
