// Package skyran is the public API of the SkyRAN reproduction: a
// self-organizing UAV-mounted LTE RAN (Chakraborty et al., CoNEXT
// 2018) together with the complete simulated substrate it runs on —
// procedural terrains, ray-traced RF propagation, an SRS/ToF PHY, a
// lightweight LTE stack, and a kinematic UAV.
//
// The typical flow:
//
//	sc, _ := skyran.NewScenario(skyran.ScenarioConfig{
//		Terrain: "CAMPUS", UEs: 6, Seed: 1,
//	})
//	ctrl := skyran.NewController(skyran.ControllerConfig{Budget: 800})
//	res, _ := ctrl.RunEpoch(sc.World)
//	fmt.Println(sc.RelativeThroughput(res.Position))
//
// Lower-level building blocks live in the internal packages; the
// examples/ directory demonstrates the public surface.
package skyran

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/rem"
	"repro/internal/sim"
	"repro/internal/terrain"
	"repro/internal/ue"
)

// Re-exported core types so callers rarely need internal imports.
type (
	// Controller is a UAV placement strategy.
	Controller = core.Controller
	// EpochResult summarises one controller epoch.
	EpochResult = core.EpochResult
	// Vec2 and Vec3 are metric coordinates (X east, Y north, Z up).
	Vec2 = geom.Vec2
	// Vec3 is a 3-D position.
	Vec3 = geom.Vec3
	// UE is a ground terminal.
	UE = ue.UE
	// World is the live simulation.
	World = sim.World
	// Report is an experiment result table.
	Report = experiments.Report
)

// V2 constructs a 2-D position.
func V2(x, y float64) Vec2 { return geom.V2(x, y) }

// V3 constructs a 3-D position.
func V3(x, y, z float64) Vec3 { return geom.V3(x, y, z) }

// ScenarioConfig describes a simulation scenario.
type ScenarioConfig struct {
	// Terrain is one of CAMPUS, RURAL, NYC, LARGE, FLAT.
	Terrain string
	// UEs is the number of ground terminals (ignored when Place is
	// non-nil).
	UEs int
	// Clustered places the UEs in a tight pocket (the paper's
	// topology B) instead of uniformly.
	Clustered bool
	// Place, when non-nil, supplies explicit UE positions.
	Place []Vec2
	// Seed drives all randomness.
	Seed int64
	// FullPHY runs the complete SRS signal chain for ranging instead
	// of the calibrated fast error model.
	FullPHY bool
	// Mobile attaches a random-waypoint walk to every UE.
	Mobile bool
	// StreetMobility attaches a street-following walk instead (UEs
	// move along open corridors of gridded urban terrain).
	StreetMobility bool
}

// Scenario is a ready-to-run world.
type Scenario struct {
	World *sim.World
}

// NewScenario builds a scenario.
func NewScenario(cfg ScenarioConfig) (*Scenario, error) {
	if cfg.Terrain == "" {
		cfg.Terrain = "CAMPUS"
	}
	t := terrain.ByName(cfg.Terrain, uint64(cfg.Seed)+1)
	if t == nil {
		return nil, fmt.Errorf("skyran: unknown terrain %q", cfg.Terrain)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	var ues []*ue.UE
	switch {
	case len(cfg.Place) > 0:
		for i, p := range cfg.Place {
			ues = append(ues, ue.New(i, p))
		}
	case cfg.Clustered:
		center := ue.PlaceRandomOpen(1, t.Bounds().Inset(t.Bounds().Width()*0.15), t.IsOpen, 0, rng)[0].Pos
		ues = ue.PlaceClustered(max(cfg.UEs, 1), center, t.Bounds().Width()*0.06, t.Bounds(), t.IsOpen, rng)
	default:
		ues = ue.PlaceRandomOpen(max(cfg.UEs, 1), t.Bounds().Inset(t.Bounds().Width()*0.08), t.IsOpen, 15, rng)
	}
	switch {
	case cfg.StreetMobility:
		for _, u := range ues {
			u.Mobility = ue.NewStreetWalk(t.Bounds().Inset(5), t.IsOpen, 1.2)
		}
	case cfg.Mobile:
		for _, u := range ues {
			u.Mobility = ue.NewRandomWaypoint(t.Bounds().Inset(20), 1.2, 30)
		}
	}
	w, err := sim.New(sim.Config{
		Terrain:     t,
		Seed:        uint64(cfg.Seed) + 1,
		FastRanging: !cfg.FullPHY,
	}, ues)
	if err != nil {
		return nil, err
	}
	return &Scenario{World: w}, nil
}

// ControllerConfig tunes the SkyRAN controller (see core.Config for
// the full surface; zero values select the paper's settings).
type ControllerConfig struct {
	// Budget is the measurement budget per epoch in metres.
	Budget float64
	// Altitude pins the operating altitude; 0 runs the first-epoch
	// altitude search.
	Altitude float64
	// Seed drives the controller's randomness.
	Seed int64
}

// NewController returns the SkyRAN controller.
func NewController(cfg ControllerConfig) *core.SkyRAN {
	return core.NewSkyRAN(core.Config{
		MeasurementBudgetM: cfg.Budget,
		FixedAltitudeM:     cfg.Altitude,
		Seed:               cfg.Seed,
	})
}

// NewUniformBaseline returns the zigzag-probing baseline at the
// default 60 m altitude.
func NewUniformBaseline(budget float64) Controller {
	return &core.Uniform{BudgetM: budget}
}

// NewUniformBaselineAt returns the zigzag-probing baseline at a chosen
// altitude (compare controllers in the same plane).
func NewUniformBaselineAt(budget, altitude float64) Controller {
	return &core.Uniform{BudgetM: budget, AltitudeM: altitude}
}

// NewCentroidBaseline returns the UE-location-only baseline.
func NewCentroidBaseline(seed int64) Controller {
	return &core.Centroid{Seed: seed}
}

// NewOracle returns the ground-truth-optimal placer (the "relative
// throughput" normaliser).
func NewOracle() Controller { return &core.Oracle{} }

// RelativeThroughput returns average UE throughput at pos relative to
// the ground-truth optimum in the same altitude plane (the paper's
// headline metric).
func (s *Scenario) RelativeThroughput(pos Vec3) float64 {
	_, best := core.BestPosition(s.World, pos.Z, 5, rem.MaxMean)
	return metrics.Clamp01(metrics.Relative(s.World.AvgThroughputAt(pos), best))
}

// OptimalPosition returns the true best position and its average
// throughput at the given altitude.
func (s *Scenario) OptimalPosition(alt float64) (Vec2, float64) {
	return core.BestPosition(s.World, alt, 5, rem.MaxMean)
}

// LocalizationErrors returns per-UE distances between estimates and
// the true positions.
func (s *Scenario) LocalizationErrors(ests []Vec2) []float64 {
	out := make([]float64, 0, len(ests))
	for i, e := range ests {
		if i < len(s.World.UEs) {
			out = append(out, e.Dist(s.World.UEs[i].Pos))
		}
	}
	return out
}

// Figures lists every paper-figure reproduction; RunFigure executes
// one by id (e.g. "fig20"). Extensions lists the ablation and
// future-work studies (e.g. "ext-multiuav"), also runnable by id.
func Figures() []experiments.Spec { return experiments.All }

// Extensions lists the ablation/extension studies.
func Extensions() []experiments.Spec { return experiments.Extensions }

// FigureOptions tunes a figure run.
type FigureOptions struct {
	// Seeds is the number of Monte-Carlo instances per configuration
	// (0 means the default of 5).
	Seeds int
	// Quick shrinks sweeps and grid resolutions.
	Quick bool
	// Workers bounds concurrent Monte-Carlo tasks: 0 uses every CPU,
	// 1 forces sequential execution. Rows are identical either way.
	Workers int
}

// RunFigure reproduces a single figure or extension at the given
// Monte-Carlo scale.
func RunFigure(id string, seeds int, quick bool) (*Report, error) {
	return RunFigureWith(id, FigureOptions{Seeds: seeds, Quick: quick})
}

// RunFigureWith reproduces a single figure or extension with full
// control over scale and parallelism.
func RunFigureWith(id string, opts FigureOptions) (*Report, error) {
	spec, ok := experiments.ByID(id)
	if !ok {
		spec, ok = experiments.ExtensionByID(id)
	}
	if !ok {
		return nil, fmt.Errorf("skyran: unknown figure %q", id)
	}
	return spec.Run(experiments.Options{Seeds: opts.Seeds, Quick: opts.Quick, Workers: opts.Workers})
}
