# Test tiers for the SkyRAN reproduction.
#
#   make tier1   build + full test suite (the acceptance gate)
#   make race    vet + race-detector suite (concurrency gate)
#   make short   quick signal while iterating
#   make bench   one bench per paper figure + hot-path micro-benches

GO ?= go

.PHONY: tier1 race short bench fmt

tier1:
	$(GO) build ./... && $(GO) test -timeout 60m ./...

race:
	$(GO) vet ./... && $(GO) test -race -timeout 120m ./...

short:
	$(GO) build ./... && $(GO) test -short ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

fmt:
	gofmt -l .
