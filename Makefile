# Test tiers for the SkyRAN reproduction.
#
#   make tier1   build + full test suite (the acceptance gate)
#   make race    vet + race-detector suite (concurrency gate)
#   make short        quick signal while iterating
#   make bench        one bench per paper figure + hot-path micro-benches
#   make serve-smoke  end-to-end skyrand daemon vs skyranctl -json diff

GO ?= go

.PHONY: tier1 race short bench fmt serve-smoke

tier1:
	$(GO) build ./... && $(GO) test -timeout 60m ./...

race:
	$(GO) vet ./... && $(GO) test -race -timeout 120m ./...

short:
	$(GO) build ./... && $(GO) test -short ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

fmt:
	gofmt -l .

serve-smoke:
	sh scripts/serve_smoke.sh
