# Test tiers for the SkyRAN reproduction.
#
#   make tier1   build + full test suite (the acceptance gate)
#   make race    vet + race-detector suite (concurrency gate)
#   make short        quick signal while iterating
#   make bench        one bench per paper figure + hot-path micro-benches
#   make bench-smoke    vet + compile-and-run every benchmark once (CI tier)
#   make serve-smoke  end-to-end skyrand daemon vs skyranctl -json diff
#   make recover-smoke  SIGKILL the daemon mid-job, restart, byte-identical finish
#   make chaos-smoke  aggressive fault schedule + daemon chaos under -race, byte-identical
#   make handover-smoke  mobile-UE multi-cell handovers under -race, byte-identical
#   make cluster-smoke  coordinator + 2 workers, SIGKILL one mid-campaign,
#                       merged result byte-identical to a single-node run
#   make chaosnet-smoke  race-built coordinator under seeded network chaos:
#                        partition one worker mid-campaign (breaker opens,
#                        shards resteal), then SIGKILL the coordinator and
#                        recover from its journal — bytes identical throughout
#   make fuzz-smoke  short native-fuzz pass over the specfile decoder and
#                    the checkpoint container reader (seeds + corpora)
#   make scenario-smoke  validate scenarios/, file-vs-flags byte diff,
#                        -spec conflict usage error, capture/replay diff
#   make bench-traffic  record BENCH_traffic.json via skyrbench vs skyrand,
#                       plus BENCH_sinr.json (per-TTI SINR-loop cost) and
#                       BENCH_cluster.json (campaign wall-clock at 1/2/4 workers)

GO ?= go

.PHONY: tier1 race short bench bench-smoke fmt serve-smoke recover-smoke chaos-smoke handover-smoke cluster-smoke chaosnet-smoke fuzz-smoke scenario-smoke bench-traffic

tier1:
	$(GO) build ./... && $(GO) test -timeout 60m ./...

race:
	$(GO) vet ./... && $(GO) test -race -timeout 120m ./...

short:
	$(GO) build ./... && $(GO) test -short ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

bench-smoke:
	$(GO) vet ./... && $(GO) test -run '^$$' -bench . -benchtime 1x ./...

fmt:
	gofmt -l .

serve-smoke:
	sh scripts/serve_smoke.sh

recover-smoke:
	sh scripts/recover_smoke.sh

chaos-smoke:
	sh scripts/chaos_smoke.sh

handover-smoke:
	sh scripts/handover_smoke.sh

cluster-smoke:
	sh scripts/cluster_smoke.sh

chaosnet-smoke:
	sh scripts/chaosnet_smoke.sh

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 10s ./internal/specfile
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime 10s ./internal/checkpoint

scenario-smoke:
	sh scripts/scenario_smoke.sh

bench-traffic:
	sh scripts/bench_traffic.sh
	sh scripts/bench_sinr.sh
	sh scripts/bench_cluster.sh
