package skyran

import (
	"strings"
	"testing"
)

func TestNewScenarioDefaults(t *testing.T) {
	sc, err := NewScenario(ScenarioConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sc.World.Terrain.Name != "CAMPUS" {
		t.Errorf("default terrain = %s", sc.World.Terrain.Name)
	}
	if len(sc.World.UEs) != 1 {
		t.Errorf("default UE count = %d", len(sc.World.UEs))
	}
}

func TestNewScenarioUnknownTerrain(t *testing.T) {
	if _, err := NewScenario(ScenarioConfig{Terrain: "MOON"}); err == nil {
		t.Error("unknown terrain should fail")
	}
}

func TestNewScenarioExplicitPlacement(t *testing.T) {
	sc, err := NewScenario(ScenarioConfig{
		Terrain: "FLAT",
		Place:   []Vec2{V2(10, 10), V2(100, 100)},
		Seed:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.World.UEs) != 2 || sc.World.UEs[1].Pos != V2(100, 100) {
		t.Error("explicit placement not honoured")
	}
}

func TestScenarioEndToEnd(t *testing.T) {
	sc, err := NewScenario(ScenarioConfig{Terrain: "CAMPUS", UEs: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewController(ControllerConfig{Budget: 500, Altitude: 60, Seed: 3})
	res, err := ctrl.RunEpoch(sc.World)
	if err != nil {
		t.Fatal(err)
	}
	rel := sc.RelativeThroughput(res.Position)
	if rel <= 0 || rel > 1 {
		t.Errorf("relative throughput = %v", rel)
	}
	errs := sc.LocalizationErrors(res.UEEstimates)
	if len(errs) != 5 {
		t.Errorf("localization errors = %d", len(errs))
	}
	pos, val := sc.OptimalPosition(60)
	if val <= 0 || !sc.World.Area().Contains(pos) {
		t.Errorf("optimal position %v value %v", pos, val)
	}
}

func TestBaselineConstructors(t *testing.T) {
	for _, c := range []Controller{
		NewUniformBaseline(500),
		NewCentroidBaseline(1),
		NewOracle(),
	} {
		if c.Name() == "" {
			t.Error("controller without a name")
		}
	}
}

func TestFiguresRegistry(t *testing.T) {
	if len(Figures()) != 20 {
		t.Errorf("figures = %d, want 20", len(Figures()))
	}
	r, err := RunFigure("fig07", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.String(), "Fig 7") {
		t.Error("figure report missing title")
	}
	if _, err := RunFigure("nope", 1, true); err == nil {
		t.Error("unknown figure should fail")
	}
}

func TestMobileScenario(t *testing.T) {
	sc, err := NewScenario(ScenarioConfig{Terrain: "FLAT", UEs: 3, Seed: 4, Mobile: true})
	if err != nil {
		t.Fatal(err)
	}
	before := make([]Vec2, len(sc.World.UEs))
	for i, u := range sc.World.UEs {
		before[i] = u.Pos
	}
	sc.World.Step(120)
	moved := false
	for i, u := range sc.World.UEs {
		if u.Pos != before[i] {
			moved = true
		}
	}
	if !moved {
		t.Error("mobile UEs never moved")
	}
}
