#!/bin/sh
# chaosnet-smoke: failure-domain drill for the cluster under seeded
# network chaos, with race-built binaries.
#
# Phase 1 records the single-node reference bytes. Phase 2 runs the
# same campaign on a 2-worker cluster whose coordinator carries a
# chaos transport that partitions worker A mid-campaign: the breaker
# must open, the shards must resteal to worker B, and the merged
# result must still be byte-identical to the reference. Phase 3
# SIGKILLs a journaling coordinator mid-campaign and restarts it
# against the same journal dir: the recovered campaign must finish
# with the same bytes.
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
pids=""
teardown() {
	for p in $pids; do kill "$p" 2>/dev/null || true; done
	for p in $pids; do
		td_i=0
		while kill -0 "$p" 2>/dev/null && [ $td_i -lt 50 ]; do
			sleep 0.1
			td_i=$((td_i + 1))
		done
		kill -KILL "$p" 2>/dev/null || true
		wait "$p" 2>/dev/null || true
	done
	pids=""
}
cleanup() {
	teardown
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "chaosnet-smoke: building skyrand (-race) and skyranctl"
go build -race -o "$tmp/skyrand" ./cmd/skyrand
go build -o "$tmp/skyranctl" ./cmd/skyranctl

start_worker() {
	: >"$1"
	"$tmp/skyrand" -addr 127.0.0.1:0 -workers 1 -queue 16 >"$1" 2>&1 &
	pids="$pids $!"
	wait_addr "$1" 's#^skyrand: listening on http://\([^ ]*\).*#\1#p'
}

# start_coordinator <log> <worker-addrs> [extra flags...]
start_coordinator() {
	log=$1
	workers=$2
	shift 2
	: >"$log"
	"$tmp/skyrand" -coordinator -addr 127.0.0.1:0 -worker-addrs "$workers" \
		-shard-seeds 1 -probe-every 200ms -probe-fails 2 "$@" >"$log" 2>&1 &
	coord_pid=$!
	pids="$pids $coord_pid"
	wait_addr "$log" 's#^skyrand: coordinating .* on http://\([^ ]*\).*#\1#p'
}

wait_addr() {
	addr=""
	wa_i=0
	while [ $wa_i -lt 100 ]; do
		addr=$(sed -n "$2" "$1")
		[ -n "$addr" ] && return
		sleep 0.1
		wa_i=$((wa_i + 1))
	done
	echo "chaosnet-smoke: process never reported its address ($1)" >&2
	cat "$1" >&2
	exit 1
}

# metric <addr> <name> -> value (integer) in $metric
metric() {
	metric=$(curl -fsS "http://$1/metrics" | sed -n "s/^$2 \([0-9][0-9]*\).*/\1/p")
}

# await_campaign <addr> <cid> <log>
await_campaign() {
	ac_status=""
	ac_i=0
	while [ $ac_i -lt 600 ]; do
		ac_status=$(curl -fsS "http://$1/v1/campaigns/$2" 2>/dev/null | sed -n 's/^  "status": "\([a-z]*\)".*/\1/p') || true
		case "$ac_status" in
		succeeded) return ;;
		failed)
			echo "chaosnet-smoke: campaign $2 failed" >&2
			curl -fsS "http://$1/v1/campaigns/$2" >&2 || true
			cat "$3" >&2
			exit 1
			;;
		esac
		sleep 0.5
		ac_i=$((ac_i + 1))
	done
	echo "chaosnet-smoke: campaign $2 stuck ($ac_status)" >&2
	cat "$3" >&2
	exit 1
}

campaign_flags="-terrain FLAT -ues 3 -budget 200 -epochs 4 -seed 7 -serve 1 -seeds 4"

# Phase 1: single-node reference.
start_worker "$tmp/w-ref.log"
start_coordinator "$tmp/c-ref.log" "http://$addr"
echo "chaosnet-smoke: reference topology up at $addr"
# shellcheck disable=SC2086
"$tmp/skyranctl" cluster submit -addr "http://$addr" $campaign_flags -wait >"$tmp/ref.json"
teardown
echo "chaosnet-smoke: reference campaign merged ($(wc -c <"$tmp/ref.json") bytes)"

# Phase 2: partition worker A mid-campaign via the chaos transport.
start_worker "$tmp/w-a.log"
wa=$addr
start_worker "$tmp/w-b.log"
wb=$addr
start_coordinator "$tmp/c2.log" "http://$wa,http://$wb" \
	-cluster-ckpt-dir "$tmp/ckpt" \
	-breaker-fails 1 -breaker-cooldown 10m \
	-chaos-net-partition-hosts "$wa" -chaos-net-partition-after 2s
caddr=$addr
echo "chaosnet-smoke: 2-worker topology up at $caddr ($wa will be partitioned)"

# shellcheck disable=SC2086
cid=$("$tmp/skyranctl" cluster submit -addr "http://$caddr" $campaign_flags)
[ -n "$cid" ] || { echo "chaosnet-smoke: submission returned no campaign id" >&2; exit 1; }
echo "chaosnet-smoke: submitted campaign $cid"
await_campaign "$caddr" "$cid" "$tmp/c2.log"

curl -fsS "http://$caddr/v1/campaigns/$cid/result" >"$tmp/partitioned.json"
if ! diff -u "$tmp/ref.json" "$tmp/partitioned.json"; then
	echo "chaosnet-smoke: merged result under partition differs from single-node reference" >&2
	exit 1
fi
echo "chaosnet-smoke: merged result under partition is byte-identical to the reference"

metric "$caddr" skyran_chaos_net_partition_drops_total
[ -n "$metric" ] && [ "$metric" -ge 1 ] ||
	{ echo "chaosnet-smoke: partition_drops_total=$metric, want >= 1" >&2; cat "$tmp/c2.log" >&2; exit 1; }
drops=$metric
metric "$caddr" skyran_breaker_open
[ -n "$metric" ] && [ "$metric" -ge 1 ] ||
	{ echo "chaosnet-smoke: skyran_breaker_open=$metric, want >= 1" >&2; cat "$tmp/c2.log" >&2; exit 1; }
open=$metric
metric "$caddr" skyran_cluster_resteals_total
[ -n "$metric" ] && [ "$metric" -ge 1 ] ||
	{ echo "chaosnet-smoke: resteals_total=$metric, want >= 1" >&2; cat "$tmp/c2.log" >&2; exit 1; }
echo "chaosnet-smoke: breaker open ($open), resteals ($metric), partition drops ($drops)"
teardown

# Phase 3: SIGKILL a journaling coordinator mid-campaign, restart it
# against the same journal dir, and require byte-identical completion.
start_worker "$tmp/w-c.log"
wc_addr=$addr
start_coordinator "$tmp/c3.log" "http://$wc_addr" -journal-dir "$tmp/journal"
caddr=$addr
# shellcheck disable=SC2086
cid=$("$tmp/skyranctl" cluster submit -addr "http://$caddr" $campaign_flags)
echo "chaosnet-smoke: submitted campaign $cid to journaling coordinator"
i=0
while [ $i -lt 100 ]; do
	[ -f "$tmp/journal/$cid.ckpt" ] && break
	sleep 0.1
	i=$((i + 1))
done
[ -f "$tmp/journal/$cid.ckpt" ] || { echo "chaosnet-smoke: campaign journal never appeared" >&2; exit 1; }
kill -KILL "$coord_pid"
wait "$coord_pid" 2>/dev/null || true
echo "chaosnet-smoke: SIGKILLed coordinator mid-campaign"

start_coordinator "$tmp/c3b.log" "http://$wc_addr" -journal-dir "$tmp/journal"
caddr=$addr
echo "chaosnet-smoke: restarted coordinator at $caddr against the same journal"
await_campaign "$caddr" "$cid" "$tmp/c3b.log"
curl -fsS "http://$caddr/v1/campaigns/$cid/result" >"$tmp/recovered.json"
if ! diff -u "$tmp/ref.json" "$tmp/recovered.json"; then
	echo "chaosnet-smoke: merged result after coordinator crash+recovery differs" >&2
	exit 1
fi
metric "$caddr" skyran_cluster_campaigns_recovered_total
[ -n "$metric" ] && [ "$metric" -ge 1 ] ||
	{ echo "chaosnet-smoke: campaigns_recovered_total=$metric, want >= 1" >&2; cat "$tmp/c3b.log" >&2; exit 1; }
echo "chaosnet-smoke: recovered campaign merged byte-identically (recovered=$metric)"

echo "chaosnet-smoke: OK"
