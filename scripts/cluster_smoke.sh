#!/bin/sh
# cluster-smoke: end-to-end proof of the multi-node cluster. Runs a
# campaign through a 1-worker coordinator for the single-node reference,
# then through a 2-worker coordinator sharing a checkpoint dir,
# SIGKILLs one worker mid-campaign, and checks that the merged result
# is byte-identical to the reference and that the coordinator reports
# the eviction on /metrics.
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
pids=""
# teardown: TERM everything, give drains a bounded window, then KILL.
# Never block in an unbounded wait — a wedged daemon must not wedge CI.
teardown() {
	for p in $pids; do kill "$p" 2>/dev/null || true; done
	for p in $pids; do
		td_i=0
		while kill -0 "$p" 2>/dev/null && [ $td_i -lt 50 ]; do
			sleep 0.1
			td_i=$((td_i + 1))
		done
		kill -KILL "$p" 2>/dev/null || true
		wait "$p" 2>/dev/null || true
	done
	pids=""
}
cleanup() {
	teardown
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "cluster-smoke: building skyrand and skyranctl"
go build -o "$tmp/skyrand" ./cmd/skyrand
go build -o "$tmp/skyranctl" ./cmd/skyranctl

# start_worker <log> -> worker base addr in $addr, pid appended to $pids
start_worker() {
	: >"$1"
	"$tmp/skyrand" -addr 127.0.0.1:0 -workers 1 -queue 16 >"$1" 2>&1 &
	pids="$pids $!"
	wait_addr "$1" 's#^skyrand: listening on http://\([^ ]*\).*#\1#p'
}

# start_coordinator <log> <worker-addrs> [extra flags...]
start_coordinator() {
	log=$1
	workers=$2
	shift 2
	: >"$log"
	"$tmp/skyrand" -coordinator -addr 127.0.0.1:0 -worker-addrs "$workers" \
		-shard-seeds 1 -probe-every 200ms -probe-fails 2 "$@" >"$log" 2>&1 &
	pids="$pids $!"
	wait_addr "$log" 's#^skyrand: coordinating .* on http://\([^ ]*\).*#\1#p'
}

# NB: sh functions share the caller's variables — keep wait_addr's
# counter out of `i`, which the poll loops below use.
wait_addr() {
	addr=""
	wa_i=0
	while [ $wa_i -lt 100 ]; do
		addr=$(sed -n "$2" "$1")
		[ -n "$addr" ] && return
		sleep 0.1
		wa_i=$((wa_i + 1))
	done
	echo "cluster-smoke: process never reported its address ($1)" >&2
	cat "$1" >&2
	exit 1
}

campaign_flags="-terrain FLAT -ues 3 -budget 200 -epochs 4 -seed 7 -serve 1 -seeds 4"

# Phase 1: single-node reference through a 1-worker cluster.
start_worker "$tmp/w-ref.log"
ref_worker=$addr
start_coordinator "$tmp/c-ref.log" "http://$ref_worker"
echo "cluster-smoke: reference topology up (1 worker) at $addr"
# shellcheck disable=SC2086
"$tmp/skyranctl" cluster submit -addr "http://$addr" $campaign_flags -wait >"$tmp/ref.json"
teardown
echo "cluster-smoke: reference campaign merged ($(wc -c <"$tmp/ref.json") bytes)"

# Phase 2: 2 fresh workers, shared shard-checkpoint dir, kill one
# mid-campaign.
start_worker "$tmp/w-a.log"
wa=$addr
wa_pid=$(echo "$pids" | awk '{print $1}')
start_worker "$tmp/w-b.log"
wb=$addr
start_coordinator "$tmp/c2.log" "http://$wa,http://$wb" -cluster-ckpt-dir "$tmp/ckpt"
caddr=$addr
echo "cluster-smoke: 2-worker topology up at $caddr (workers $wa, $wb)"

# shellcheck disable=SC2086
cid=$("$tmp/skyranctl" cluster submit -addr "http://$caddr" $campaign_flags)
[ -n "$cid" ] || { echo "cluster-smoke: submission returned no campaign id" >&2; exit 1; }
echo "cluster-smoke: submitted campaign $cid"

# Wait until some sub-job has committed a checkpoint into the shared
# dir, then SIGKILL worker A — no drain, no goodbye.
i=0
while [ $i -lt 300 ]; do
	if ls "$tmp/ckpt/$cid"/seed-*/epoch-*.ckpt >/dev/null 2>&1; then
		break
	fi
	sleep 0.1
	i=$((i + 1))
done
ls "$tmp/ckpt/$cid"/seed-*/epoch-*.ckpt >/dev/null 2>&1 ||
	{ echo "cluster-smoke: no shard checkpoint appeared" >&2; cat "$tmp/c2.log" >&2; exit 1; }
kill -KILL "$wa_pid"
wait "$wa_pid" 2>/dev/null || true
echo "cluster-smoke: SIGKILLed worker A mid-campaign"

status=""
i=0
while [ $i -lt 600 ]; do
	status=$(curl -fsS "http://$caddr/v1/campaigns/$cid" | sed -n 's/^  "status": "\([a-z]*\)".*/\1/p')
	case "$status" in
	succeeded) break ;;
	failed)
		echo "cluster-smoke: campaign $cid failed" >&2
		curl -fsS "http://$caddr/v1/campaigns/$cid" >&2
		cat "$tmp/c2.log" >&2
		exit 1
		;;
	esac
	sleep 0.5
	i=$((i + 1))
done
[ "$status" = succeeded ] || { echo "cluster-smoke: campaign stuck ($status)" >&2; cat "$tmp/c2.log" >&2; exit 1; }

curl -fsS "http://$caddr/v1/campaigns/$cid/result" >"$tmp/killed.json"
if ! diff -u "$tmp/ref.json" "$tmp/killed.json"; then
	echo "cluster-smoke: merged result after worker kill differs from single-node reference" >&2
	exit 1
fi
echo "cluster-smoke: merged result is byte-identical to the single-node reference"

evicted=$(curl -fsS "http://$caddr/metrics" | sed -n 's/^skyran_cluster_evicted_total \([0-9][0-9]*\).*/\1/p')
[ -n "$evicted" ] && [ "$evicted" -ge 1 ] ||
	{ echo "cluster-smoke: skyran_cluster_evicted_total=$evicted, want >= 1" >&2; exit 1; }
resteals=$(curl -fsS "http://$caddr/metrics" | sed -n 's/^skyran_cluster_resteals_total \([0-9][0-9]*\).*/\1/p')
[ -n "$resteals" ] && [ "$resteals" -ge 1 ] ||
	{ echo "cluster-smoke: skyran_cluster_resteals_total=$resteals, want >= 1" >&2; exit 1; }
echo "cluster-smoke: coordinator reported eviction ($evicted) and resteal ($resteals)"

echo "cluster-smoke: OK"
