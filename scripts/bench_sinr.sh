#!/bin/sh
# bench-sinr: record BENCH_sinr.json — the per-TTI SINR-loop cost
# (pathloss per interferer path through the shared obstruction cache,
# RB-overlap accumulation, penalty mapping) at 2, 4 and 8 co-channel
# cells, from BenchmarkSINRLoop in internal/interference.
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

echo "bench-sinr: running BenchmarkSINRLoop"
go test -run '^$' -bench 'BenchmarkSINRLoop' ./internal/interference >"$tmp/bench.txt"
cat "$tmp/bench.txt"

awk '
$1 ~ /^BenchmarkSINRLoop\// {
	split($1, parts, "/")
	sub(/-[0-9]+$/, "", parts[2])
	name = parts[2]
	ns[name] = $3
	order[n++] = name
}
END {
	if (n == 0) {
		print "bench-sinr: no benchmark results parsed" > "/dev/stderr"
		exit 1
	}
	printf "{\n"
	for (i = 0; i < n; i++) {
		printf "  \"%s_ns_per_op\": %s%s\n", order[i], ns[order[i]], (i + 1 < n ? "," : "")
	}
	printf "}\n"
}' "$tmp/bench.txt" >BENCH_sinr.json

echo "bench-sinr: OK (BENCH_sinr.json)"
