#!/bin/sh
# recover-smoke: end-to-end proof that the skyrand daemon survives a
# hard crash. Starts skyrand with a checkpoint dir, submits a
# multi-epoch job, SIGKILLs the daemon once the job has checkpointed,
# restarts it on the same dir, and checks that the recovered job
# completes with bytes identical to `skyranctl -json` — plus that
# /metrics reports the recovery and `skyranctl checkpoints` verifies
# the files the crash left behind.
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "recover-smoke: building skyrand and skyranctl"
go build -o "$tmp/skyrand" ./cmd/skyrand
go build -o "$tmp/skyranctl" ./cmd/skyranctl

# The uninterrupted reference: what the job must produce in the end.
"$tmp/skyranctl" -terrain FLAT -ues 3 -budget 200 -epochs 6 -seed 7 -serve 1 -json >"$tmp/ref.json"

start_daemon() {
	: >"$tmp/skyrand.log"
	"$tmp/skyrand" -addr 127.0.0.1:0 -workers 1 -queue 4 \
		-checkpoint-dir "$tmp/ckpt" >"$tmp/skyrand.log" 2>&1 &
	pid=$!
	addr=""
	i=0
	while [ $i -lt 100 ]; do
		addr=$(sed -n 's#^skyrand: listening on http://\([^ ]*\).*#\1#p' "$tmp/skyrand.log")
		[ -n "$addr" ] && break
		kill -0 "$pid" 2>/dev/null || { cat "$tmp/skyrand.log"; exit 1; }
		sleep 0.1
		i=$((i + 1))
	done
	[ -n "$addr" ] || { echo "recover-smoke: daemon never reported its address" >&2; exit 1; }
}

start_daemon
echo "recover-smoke: daemon up at $addr (checkpoints in $tmp/ckpt)"

spec='{"terrain":"FLAT","ues":3,"budget_m":200,"epochs":6,"seed":7,"serve_s":1}'
id=$(curl -fsS -d "$spec" "http://$addr/v1/jobs" | sed -n 's/.*"id": "\(j[0-9]*\)".*/\1/p')
[ -n "$id" ] || { echo "recover-smoke: submission returned no job id" >&2; exit 1; }
echo "recover-smoke: submitted job $id"

# Wait until the job has persisted at least one checkpoint, then kill
# the daemon the hard way — no drain, no journal finalization.
i=0
while [ $i -lt 300 ]; do
	if ls "$tmp/ckpt/jobs/$id/"epoch-*.ckpt >/dev/null 2>&1; then
		break
	fi
	kill -0 "$pid" 2>/dev/null || { cat "$tmp/skyrand.log"; exit 1; }
	sleep 0.1
	i=$((i + 1))
done
ls "$tmp/ckpt/jobs/$id/"epoch-*.ckpt >/dev/null 2>&1 ||
	{ echo "recover-smoke: job never checkpointed" >&2; exit 1; }
kill -KILL "$pid"
wait "$pid" 2>/dev/null || true
pid=""
echo "recover-smoke: SIGKILLed the daemon mid-run"

# The crash leftovers must verify cleanly.
"$tmp/skyranctl" checkpoints "$tmp/ckpt/jobs/$id" ||
	{ echo "recover-smoke: leftover checkpoints failed verification" >&2; exit 1; }

start_daemon
echo "recover-smoke: daemon restarted at $addr"

status=""
i=0
while [ $i -lt 600 ]; do
	status=$(curl -fsS "http://$addr/v1/jobs/$id" | sed -n 's/^  "status": "\([a-z]*\)".*/\1/p')
	case "$status" in
	succeeded) break ;;
	failed | canceled)
		echo "recover-smoke: recovered job $id ended $status" >&2
		curl -fsS "http://$addr/v1/jobs/$id" >&2
		exit 1
		;;
	"")
		echo "recover-smoke: job $id unknown after restart" >&2
		exit 1
		;;
	esac
	sleep 0.5
	i=$((i + 1))
done
[ "$status" = succeeded ] || { echo "recover-smoke: recovered job stuck ($status)" >&2; exit 1; }

curl -fsS "http://$addr/v1/jobs/$id" >"$tmp/job.json"
grep -q '"recovered": true' "$tmp/job.json" ||
	{ echo "recover-smoke: job not marked recovered" >&2; exit 1; }

curl -fsS "http://$addr/v1/jobs/$id/result" >"$tmp/recovered.json"
if ! diff -u "$tmp/ref.json" "$tmp/recovered.json"; then
	echo "recover-smoke: recovered result differs from skyranctl -json" >&2
	exit 1
fi
echo "recover-smoke: recovered result is byte-identical to skyranctl -json"

recoveries=$(curl -fsS "http://$addr/metrics" | sed -n 's/^skyran_checkpoint_recoveries_total \([0-9]*\).*/\1/p')
[ -n "$recoveries" ] && [ "$recoveries" -ge 1 ] ||
	{ echo "recover-smoke: skyran_checkpoint_recoveries_total=$recoveries, want >= 1" >&2; exit 1; }

kill -TERM "$pid"
wait "$pid" || { echo "recover-smoke: daemon exited non-zero after SIGTERM" >&2; exit 1; }
pid=""

echo "recover-smoke: OK"
