#!/bin/sh
# bench-traffic: record BENCH_traffic.json with skyrbench. Starts
# skyrand on an ephemeral port, drives it with concurrent bursty-load
# scenario jobs (including one 10k-UE scale-up job), and writes the
# latency/throughput snapshot to the repo root.
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "bench-traffic: building skyrand and skyrbench"
go build -o "$tmp/skyrand" ./cmd/skyrand
go build -o "$tmp/skyrbench" ./cmd/skyrbench

"$tmp/skyrand" -addr 127.0.0.1:0 -workers 4 -queue 32 -job-timeout 15m >"$tmp/skyrand.log" 2>&1 &
pid=$!

addr=""
i=0
while [ $i -lt 100 ]; do
	addr=$(sed -n 's#^skyrand: listening on http://\([^ ]*\).*#\1#p' "$tmp/skyrand.log")
	[ -n "$addr" ] && break
	kill -0 "$pid" 2>/dev/null || { cat "$tmp/skyrand.log"; exit 1; }
	sleep 0.1
	i=$((i + 1))
done
[ -n "$addr" ] || { echo "bench-traffic: daemon never reported its address" >&2; exit 1; }
echo "bench-traffic: daemon up at $addr"

echo "bench-traffic: open-loop bursty-load run (16 jobs at 8 jobs/s)"
"$tmp/skyrbench" -addr "http://$addr" -jobs 16 -rate 8 \
	-terrain FLAT -ues 5 -epochs 2 -serve 1 \
	-traffic onoff -traffic-rate 3e6 \
	-timeout 5m -out BENCH_traffic.json

echo "bench-traffic: 10k-UE scale-up job through the daemon"
"$tmp/skyrbench" -addr "http://$addr" -jobs 1 -rate 1 \
	-terrain FLAT -ues 10000 -controller random -epochs 1 -serve 1 \
	-traffic onoff -traffic-rate 1e5 \
	-timeout 15m -out BENCH_traffic_10k.json

kill -TERM "$pid"
wait "$pid" || true
pid=""

echo "bench-traffic: OK (BENCH_traffic.json, BENCH_traffic_10k.json)"
