#!/bin/sh
# scenario-smoke: prove the declarative scenario path end to end.
# Validates every file in scenarios/, runs the quickstart scenario
# from its file, and byte-diffs the result against the equivalent
# all-flags run — a file-loaded scenario must be indistinguishable
# from the flags it replaces. Also checks that combining -spec with a
# scenario flag is the documented usage error (exit 2), and that a
# recorded traffic trace replays byte-identically.
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
cleanup() {
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "scenario-smoke: building skyranctl"
go build -o "$tmp/skyranctl" ./cmd/skyranctl

echo "scenario-smoke: validating scenario library"
"$tmp/skyranctl" scenario validate scenarios/*.yaml

echo "scenario-smoke: file-vs-flags byte diff (quickstart)"
"$tmp/skyranctl" -spec scenarios/quickstart.yaml -json >"$tmp/file.json"
"$tmp/skyranctl" -terrain FLAT -ues 3 -budget 200 -epochs 1 -seed 1 -serve 1 -json >"$tmp/flags.json"
if ! diff -u "$tmp/flags.json" "$tmp/file.json"; then
	echo "scenario-smoke: file run differs from flag run" >&2
	exit 1
fi
echo "scenario-smoke: file run is byte-identical to the flag run"

echo "scenario-smoke: -spec + scenario flag must be a usage error"
set +e
"$tmp/skyranctl" -spec scenarios/quickstart.yaml -ues 5 -json >/dev/null 2>"$tmp/conflict.err"
status=$?
set -e
[ "$status" -eq 2 ] || { echo "scenario-smoke: conflict exited $status, want 2" >&2; exit 1; }
grep -q "cannot be combined" "$tmp/conflict.err" ||
	{ echo "scenario-smoke: conflict error message missing" >&2; cat "$tmp/conflict.err" >&2; exit 1; }

# The replayed run's embedded spec names the trace file instead of the
# workload it replaces, so the diff covers the KPI payload: every
# epoch row must come back byte-identical.
echo "scenario-smoke: capture/replay KPI byte diff"
"$tmp/skyranctl" -terrain FLAT -ues 3 -budget 200 -epochs 1 -seed 9 -serve 2 \
	-traffic poisson -record-trace "$tmp/run.trace" -json >"$tmp/capture.json"
"$tmp/skyranctl" -terrain FLAT -ues 3 -budget 200 -epochs 1 -seed 9 -serve 2 \
	-traffic-replay "$tmp/run.trace" -json >"$tmp/replay.json"
jq .epochs "$tmp/capture.json" >"$tmp/capture.epochs"
jq .epochs "$tmp/replay.json" >"$tmp/replay.epochs"
if ! diff -u "$tmp/capture.epochs" "$tmp/replay.epochs"; then
	echo "scenario-smoke: replayed epochs differ from capturing run" >&2
	exit 1
fi
echo "scenario-smoke: replayed epochs are byte-identical to the capturing run"

echo "scenario-smoke: OK"
