#!/bin/sh
# bench-cluster: record BENCH_cluster.json — campaign wall-clock through
# a cluster coordinator at 1, 2 and 4 local workers, same offered load
# each time. On a many-core host the sweep shows shard parallelism; on
# a small one it quantifies coordination overhead honestly.
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
pids=""
# teardown: TERM everything, give drains a bounded window, then KILL.
# Never block in an unbounded wait — a wedged daemon must not wedge CI.
teardown() {
	for p in $pids; do kill "$p" 2>/dev/null || true; done
	for p in $pids; do
		td_i=0
		while kill -0 "$p" 2>/dev/null && [ $td_i -lt 50 ]; do
			sleep 0.1
			td_i=$((td_i + 1))
		done
		kill -KILL "$p" 2>/dev/null || true
		wait "$p" 2>/dev/null || true
	done
	pids=""
}
cleanup() {
	teardown
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "bench-cluster: building skyrand and skyrbench"
go build -o "$tmp/skyrand" ./cmd/skyrand
go build -o "$tmp/skyrbench" ./cmd/skyrbench

# NB: sh functions share the caller's variables — wait_addr must not
# touch `i`, which bench_topology uses as its worker-spawn counter.
wait_addr() {
	addr=""
	wa_i=0
	while [ $wa_i -lt 100 ]; do
		addr=$(sed -n "$2" "$1")
		[ -n "$addr" ] && return
		sleep 0.1
		wa_i=$((wa_i + 1))
	done
	echo "bench-cluster: process never reported its address ($1)" >&2
	cat "$1" >&2
	exit 1
}

bench_topology() {
	n=$1
	workers=""
	i=0
	while [ $i -lt "$n" ]; do
		log="$tmp/w-$n-$i.log"
		: >"$log"
		"$tmp/skyrand" -addr 127.0.0.1:0 -workers 1 -queue 32 -drain-grace 2s >"$log" 2>&1 &
		pids="$pids $!"
		wait_addr "$log" 's#^skyrand: listening on http://\([^ ]*\).*#\1#p'
		workers="$workers,http://$addr"
		i=$((i + 1))
	done
	workers=${workers#,}

	clog="$tmp/c-$n.log"
	: >"$clog"
	"$tmp/skyrand" -coordinator -addr 127.0.0.1:0 -worker-addrs "$workers" \
		-shard-seeds 1 >"$clog" 2>&1 &
	pids="$pids $!"
	wait_addr "$clog" 's#^skyrand: coordinating .* on http://\([^ ]*\).*#\1#p'

	echo "bench-cluster: $n worker(s), coordinator at $addr"
	"$tmp/skyrbench" -coordinator -addr "http://$addr" \
		-jobs 2 -seeds 4 -rate 0.5 -workers-label "$n" \
		-terrain FLAT -ues 3 -epochs 1 -serve 1 \
		-timeout 10m -out "$tmp/bench-$n.json"

	teardown
}

bench_topology 1
bench_topology 2
bench_topology 4

# Assemble the per-topology snapshots into one document.
{
	printf '{\n  "sweep": [\n'
	cat "$tmp/bench-1.json"
	printf ',\n'
	cat "$tmp/bench-2.json"
	printf ',\n'
	cat "$tmp/bench-4.json"
	printf '  ]\n}\n'
} >BENCH_cluster.json

echo "bench-cluster: OK (BENCH_cluster.json)"
