#!/bin/sh
# chaos-smoke: end-to-end proof that an aggressive fault schedule stays
# deterministic and the daemon degrades gracefully under chaos. Runs
# the same faulty scenario twice through a race-built skyranctl and
# requires byte-identical output, then starts a race-built skyrand with
# worker-crash and slow-handler chaos enabled, submits the same spec
# twice under one idempotency key (second submit must replay, not
# double-run), and checks the daemon's result bytes match the CLI plus
# that /metrics shows the simulated crash and non-zero fault counters.
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "chaos-smoke: building skyrand and skyranctl with -race"
go build -race -o "$tmp/skyrand" ./cmd/skyrand
go build -race -o "$tmp/skyranctl" ./cmd/skyranctl

# An aggressive schedule touching every fault domain at once.
fault_flags='-fault-srs-drop 0.25 -fault-srs-outlier 0.15 -fault-gtpu-loss 0.1
	-fault-gtpu-dup 0.05 -fault-ue-churn 0.3 -fault-gps-drift 2
	-fault-battery-sag 0.1 -fault-abort-leg 0.2'
spec_flags='-terrain FLAT -ues 3 -budget 200 -epochs 2 -seed 7 -serve 1 -traffic onoff'

# shellcheck disable=SC2086
"$tmp/skyranctl" $spec_flags $fault_flags -json >"$tmp/run1.json"
# shellcheck disable=SC2086
"$tmp/skyranctl" $spec_flags $fault_flags -json >"$tmp/run2.json"
if ! cmp -s "$tmp/run1.json" "$tmp/run2.json"; then
	echo "chaos-smoke: two identical faulty runs differ" >&2
	diff -u "$tmp/run1.json" "$tmp/run2.json" >&2 || true
	exit 1
fi
grep -q '"faults"' "$tmp/run1.json" ||
	{ echo "chaos-smoke: faulty run reported no fault counters" >&2; exit 1; }
echo "chaos-smoke: faulty CLI runs are byte-identical and report fault counters"

"$tmp/skyrand" -addr 127.0.0.1:0 -workers 1 -queue 4 \
	-checkpoint-dir "$tmp/ckpt" \
	-chaos-seed 11 -chaos-crash-rate 1 -chaos-crash-after 300ms -chaos-max-crashes 1 \
	-chaos-slow-rate 0.5 -chaos-slow-max 10ms >"$tmp/skyrand.log" 2>&1 &
pid=$!

addr=""
i=0
while [ $i -lt 100 ]; do
	addr=$(sed -n 's#^skyrand: listening on http://\([^ ]*\).*#\1#p' "$tmp/skyrand.log")
	[ -n "$addr" ] && break
	kill -0 "$pid" 2>/dev/null || { cat "$tmp/skyrand.log"; exit 1; }
	sleep 0.1
	i=$((i + 1))
done
[ -n "$addr" ] || { echo "chaos-smoke: daemon never reported its address" >&2; exit 1; }
echo "chaos-smoke: chaotic daemon up at $addr"

# First submission runs the job (surviving one simulated worker crash);
# the second replays it off the idempotency key instead of re-running.
# shellcheck disable=SC2086
"$tmp/skyranctl" submit -addr "http://$addr" -idem-key chaos-smoke-1 -wait \
	$spec_flags $fault_flags >"$tmp/daemon.json" 2>"$tmp/submit1.log"
id1=$(sed -n 's/^skyranctl: submitted job \(j[0-9]*\).*/\1/p' "$tmp/submit1.log")
[ -n "$id1" ] || { cat "$tmp/submit1.log" >&2; echo "chaos-smoke: no job id from submit" >&2; exit 1; }

# shellcheck disable=SC2086
id2=$("$tmp/skyranctl" submit -addr "http://$addr" -idem-key chaos-smoke-1 \
	$spec_flags $fault_flags 2>"$tmp/submit2.log")
grep -q "replayed from idempotency key" "$tmp/submit2.log" ||
	{ cat "$tmp/submit2.log" >&2; echo "chaos-smoke: duplicate submit was not replayed" >&2; exit 1; }
[ "$id1" = "$id2" ] ||
	{ echo "chaos-smoke: replay returned job $id2, want $id1" >&2; exit 1; }
echo "chaos-smoke: duplicate submission replayed job $id1"

if ! cmp -s "$tmp/run1.json" "$tmp/daemon.json"; then
	echo "chaos-smoke: crashed-and-recovered daemon result differs from skyranctl -json" >&2
	diff -u "$tmp/run1.json" "$tmp/daemon.json" >&2 || true
	exit 1
fi
echo "chaos-smoke: daemon result survived a simulated crash byte-identical to the CLI"

curl -fsS "http://$addr/metrics" >"$tmp/metrics.txt"
grep -Eq '^skyrand_worker_crashes_total [1-9]' "$tmp/metrics.txt" ||
	{ echo "chaos-smoke: no simulated worker crash recorded" >&2; exit 1; }
grep -Eq '^skyran_fault_[a-z_]+_total [1-9]' "$tmp/metrics.txt" ||
	{ echo "chaos-smoke: fault counters all zero" >&2; exit 1; }
grep -Eq '^skyrand_chaos_slow_handlers_total [1-9]' "$tmp/metrics.txt" ||
	{ echo "chaos-smoke: slow-handler chaos never fired" >&2; exit 1; }
echo "chaos-smoke: metrics show the crash, slow handlers and non-zero fault counters"

kill -TERM "$pid"
wait "$pid" || { echo "chaos-smoke: daemon exited non-zero after SIGTERM" >&2; exit 1; }
pid=""

echo "chaos-smoke: OK"
