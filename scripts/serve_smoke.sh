#!/bin/sh
# serve-smoke: end-to-end proof that the skyrand daemon serves exactly
# what skyranctl computes. Starts skyrand on an ephemeral port, submits
# a tiny FLAT job over HTTP, polls it to completion, and diffs the
# /result bytes against `skyranctl -json` with the same knobs. Also
# exercises /healthz, /metrics and the SIGTERM graceful drain.
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building skyrand and skyranctl"
go build -o "$tmp/skyrand" ./cmd/skyrand
go build -o "$tmp/skyranctl" ./cmd/skyranctl

"$tmp/skyrand" -addr 127.0.0.1:0 -workers 2 -queue 4 >"$tmp/skyrand.log" 2>&1 &
pid=$!

addr=""
i=0
while [ $i -lt 100 ]; do
	addr=$(sed -n 's#^skyrand: listening on http://\([^ ]*\).*#\1#p' "$tmp/skyrand.log")
	[ -n "$addr" ] && break
	kill -0 "$pid" 2>/dev/null || { cat "$tmp/skyrand.log"; exit 1; }
	sleep 0.1
	i=$((i + 1))
done
[ -n "$addr" ] || { echo "serve-smoke: daemon never reported its address" >&2; exit 1; }
echo "serve-smoke: daemon up at $addr"

curl -fsS "http://$addr/healthz" >/dev/null
curl -fsS "http://$addr/readyz" >/dev/null

spec='{"terrain":"FLAT","ues":3,"budget_m":200,"epochs":1,"seed":7,"serve_s":1}'
id=$(curl -fsS -d "$spec" "http://$addr/v1/jobs" | sed -n 's/.*"id": "\(j[0-9]*\)".*/\1/p')
[ -n "$id" ] || { echo "serve-smoke: submission returned no job id" >&2; exit 1; }
echo "serve-smoke: submitted job $id"

status=""
i=0
while [ $i -lt 240 ]; do
	status=$(curl -fsS "http://$addr/v1/jobs/$id" | sed -n 's/^  "status": "\([a-z]*\)".*/\1/p')
	case "$status" in
	succeeded) break ;;
	failed | canceled)
		echo "serve-smoke: job $id ended $status" >&2
		curl -fsS "http://$addr/v1/jobs/$id" >&2
		exit 1
		;;
	esac
	sleep 0.5
	i=$((i + 1))
done
[ "$status" = succeeded ] || { echo "serve-smoke: job $id stuck ($status)" >&2; exit 1; }

curl -fsS "http://$addr/v1/jobs/$id/result" >"$tmp/daemon.json"
"$tmp/skyranctl" -terrain FLAT -ues 3 -budget 200 -epochs 1 -seed 7 -serve 1 -json >"$tmp/cli.json"
if ! diff -u "$tmp/cli.json" "$tmp/daemon.json"; then
	echo "serve-smoke: daemon result differs from skyranctl -json" >&2
	exit 1
fi
echo "serve-smoke: daemon result is byte-identical to skyranctl -json"

curl -fsS "http://$addr/metrics" | grep -q '^skyrand_jobs_completed_total 1$' ||
	{ echo "serve-smoke: metrics do not show the completed job" >&2; exit 1; }

kill -TERM "$pid"
wait "$pid" || { echo "serve-smoke: daemon exited non-zero after SIGTERM" >&2; exit 1; }
pid=""
grep -q "drained, exiting" "$tmp/skyrand.log" ||
	{ echo "serve-smoke: daemon did not report a clean drain" >&2; cat "$tmp/skyrand.log"; exit 1; }

echo "serve-smoke: OK"
