#!/bin/sh
# handover-smoke: a 3-cell mobile-UE scenario with forced handovers,
# run twice under the race detector. The two -json outputs must be
# byte-identical (handover bookkeeping is deterministic even with the
# A3 sweep interleaving TTI planning) and must record at least one
# successful handover.
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

echo "handover-smoke: building skyranctl (-race)"
go build -race -o "$tmp/skyranctl" ./cmd/skyranctl

run() {
	"$tmp/skyranctl" -terrain FLAT -ues 6 -cells 3 -mobility 20 \
		-handover-hysteresis 1 -handover-ttt 0.1 \
		-traffic cbr -traffic-rate 4e5 -serve 10 -epochs 2 -seed 9 -json
}

echo "handover-smoke: run 1"
run >"$tmp/run1.json"
echo "handover-smoke: run 2"
run >"$tmp/run2.json"

cmp "$tmp/run1.json" "$tmp/run2.json" || {
	echo "handover-smoke: runs are not byte-identical" >&2
	exit 1
}

hos=$(grep -o '"successes": [0-9]*' "$tmp/run1.json" | awk '{s += $2} END {print s + 0}')
if [ "$hos" -lt 1 ]; then
	echo "handover-smoke: scenario completed no handovers" >&2
	exit 1
fi

echo "handover-smoke: OK ($hos successful handovers, byte-identical under -race)"
